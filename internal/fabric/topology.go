package fabric

import (
	"fmt"
	"strings"

	"fcc/internal/flit"
	"fcc/internal/link"
	"fcc/internal/sim"
)

// Role classifies a fabric endpoint for management and rendering.
type Role uint8

// Endpoint roles (Figure 1b).
const (
	RoleHost    Role = iota // a host server behind an FHA
	RoleFAM                 // fabric-attached memory chassis (behind an FEA)
	RoleFAA                 // fabric-attached accelerator chassis
	RoleManager             // the fabric manager / central arbiter
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleHost:
		return "host"
	case RoleFAM:
		return "FAM"
	case RoleFAA:
		return "FAA"
	case RoleManager:
		return "manager"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Attachment is what an endpoint receives when it joins the fabric: its
// assigned PBR ID and the link port it sends/receives on.
type Attachment struct {
	Name string
	Role Role
	ID   flit.PortID
	Port *link.Port
	// Link is the full endpoint link (both directions) — the handle the
	// fault injector and the manager's health sweep address it by.
	Link *link.Link
	// Switch and SwitchPort identify where the endpoint attaches.
	Switch     *Switch
	SwitchPort int
	// Domain is the failure domain (shard) the endpoint belongs to —
	// its home switch's domain. Always 0 on an unsharded builder.
	Domain int
	// Eng is the engine the endpoint's model code must schedule on:
	// its domain's private engine under sharding, the shared engine
	// otherwise.
	Eng *sim.Engine
}

// Builder assembles a fabric topology: switches, inter-switch links, and
// endpoint attachments. After construction, Discover plays the fabric
// manager: it walks the topology and installs PBR routes on every
// switch, exactly as the paper describes the FM "filling up the
// switching table" (§2.1).
type Builder struct {
	eng        *sim.Engine
	switches   []*Switch
	links      []*isl
	attached   []*Attachment
	nextID     flit.PortID
	discovered bool

	// Arenas: Reserve sizes these from the topology generator so cluster
	// assembly at datacenter scale allocates whole tiers at once instead
	// of one switch/link/attachment record at a time.
	swArena  []Switch
	islArena []isl
	attArena []Attachment

	// re is the route engine: batched per-home-switch BFS with reused
	// scratch, per-destination contributing-edge bitmaps, and stored
	// distance vectors for incremental fault repair.
	re routeEngine

	// Sharded assembly (nil for the classic single-engine fabric): each
	// switch and its attached endpoints live in one failure domain with
	// a private engine; inter-switch links whose ends fall in different
	// domains become cross-shard links synchronized by the coordinator.
	shard    *Sharding
	swDomain map[*Switch]int
}

// Sharding partitions a fabric across the failure domains of a
// Coordinator. DomainOf maps a switch's creation index (the order of
// AddSwitch calls) to its domain; endpoints inherit their home switch's
// domain, which makes a domain exactly "a switch plus its attached
// endpoints" (or a contiguous group of switches when there are more
// switches than shards).
type Sharding struct {
	Coord    *sim.Coordinator
	DomainOf func(switchIdx int) int
}

// isl is an inter-switch link record.
type isl struct {
	a, b         *Switch
	aPort, bPort int
	link         *link.Link
	prop         sim.Time // wire propagation delay, for lookahead discovery
}

// NewBuilder returns an empty topology bound to eng.
func NewBuilder(eng *sim.Engine) *Builder {
	return &Builder{eng: eng}
}

// Reserve preallocates the builder's switch, link, and attachment
// arenas for a topology of known size (the generator computes the
// counts), so assembly appends into contiguous storage instead of
// allocating every record individually. Capacity is a hint: exceeding
// it falls back to individual allocation.
func (b *Builder) Reserve(switches, isls, endpoints int) {
	if cap(b.swArena) == 0 && switches > 0 {
		b.swArena = make([]Switch, 0, switches)
		b.switches = make([]*Switch, 0, switches)
	}
	if cap(b.islArena) == 0 && isls > 0 {
		b.islArena = make([]isl, 0, isls)
		b.links = make([]*isl, 0, isls)
	}
	if cap(b.attArena) == 0 && endpoints > 0 {
		b.attArena = make([]Attachment, 0, endpoints)
		b.attached = make([]*Attachment, 0, endpoints)
	}
}

// NewShardedBuilder returns a topology partitioned across sh's domains.
// The builder's base engine is domain 0's; every switch and endpoint is
// created on its own domain's engine.
func NewShardedBuilder(sh Sharding) *Builder {
	return &Builder{
		eng:      sh.Coord.Engine(0),
		shard:    &sh,
		swDomain: make(map[*Switch]int),
	}
}

// Domain reports the failure domain a switch was assigned to (0 on an
// unsharded builder).
func (b *Builder) Domain(sw *Switch) int {
	if b.shard == nil {
		return 0
	}
	return b.swDomain[sw]
}

// engineFor returns the engine a switch's domain runs on.
func (b *Builder) engineFor(sw *Switch) *sim.Engine {
	if b.shard == nil {
		return b.eng
	}
	return b.shard.Coord.Engine(b.swDomain[sw])
}

// AddSwitch creates a switch (on its domain's engine when sharded).
func (b *Builder) AddSwitch(name string, cfg SwitchConfig) *Switch {
	eng := b.eng
	var dom int
	if b.shard != nil {
		dom = b.shard.DomainOf(len(b.switches))
		if dom < 0 || dom >= b.shard.Coord.Shards() {
			panic(fmt.Sprintf("fabric: DomainOf(%d) = %d out of range [0,%d)",
				len(b.switches), dom, b.shard.Coord.Shards()))
		}
		eng = b.shard.Coord.Engine(dom)
	}
	var sw *Switch
	if len(b.swArena) < cap(b.swArena) {
		b.swArena = b.swArena[:len(b.swArena)+1]
		sw = &b.swArena[len(b.swArena)-1]
	} else {
		sw = new(Switch)
	}
	initSwitch(sw, eng, name, cfg)
	sw.idx = len(b.switches)
	b.switches = append(b.switches, sw)
	if b.shard != nil {
		b.swDomain[sw] = dom
	}
	return sw
}

// ConnectSwitches joins two switches with a link (a PBR link within a
// domain, or an HBR link between domains — routing treats them alike).
// When the two switches live in different failure domains the link is a
// cross-shard link: its wire messages travel through the coordinator's
// mailboxes, and its propagation delay must be at least the
// coordinator's lookahead window.
func (b *Builder) ConnectSwitches(x, y *Switch, cfg link.Config) error {
	name := fmt.Sprintf("%s<->%s", x.name, y.name)
	var l *link.Link
	var err error
	if dx, dy := b.Domain(x), b.Domain(y); b.shard != nil && dx != dy {
		co := b.shard.Coord
		if cfg.Phys.Propagation < co.Window() {
			return fmt.Errorf("fabric: cross-domain link %s propagation %v below the coordinator lookahead window %v",
				name, cfg.Phys.Propagation, co.Window())
		}
		l, err = link.NewCross(name, cfg, co.Engine(dx), co.Engine(dy),
			co.Mailbox(dx, dy), co.Mailbox(dy, dx))
	} else {
		l, err = link.New(b.engineFor(x), name, cfg)
	}
	if err != nil {
		return err
	}
	xp := x.attach(l.A())
	yp := y.attach(l.B())
	var rec *isl
	if len(b.islArena) < cap(b.islArena) {
		b.islArena = b.islArena[:len(b.islArena)+1]
		rec = &b.islArena[len(b.islArena)-1]
	} else {
		rec = new(isl)
	}
	*rec = isl{a: x, b: y, aPort: xp, bPort: yp, link: l, prop: cfg.Phys.Propagation}
	b.links = append(b.links, rec)
	return nil
}

// AttachEndpoint joins an endpoint (host FHA, FAM/FAA FEA) to a switch
// and assigns it the next PBR ID. The returned Attachment's Port is the
// endpoint side; callers attach their own sink (usually a txn.Endpoint).
func (b *Builder) AttachEndpoint(sw *Switch, name string, role Role, cfg link.Config) (*Attachment, error) {
	if b.nextID > flit.MaxPortID {
		return nil, fmt.Errorf("fabric: PBR ID space exhausted (12-bit, max %d endpoints)", flit.MaxPortID+1)
	}
	eng := b.engineFor(sw)
	l, err := link.New(eng, fmt.Sprintf("%s<->%s", name, sw.name), cfg)
	if err != nil {
		return nil, err
	}
	swPortIdx := sw.attach(l.B())
	var att *Attachment
	if len(b.attArena) < cap(b.attArena) {
		b.attArena = b.attArena[:len(b.attArena)+1]
		att = &b.attArena[len(b.attArena)-1]
	} else {
		att = new(Attachment)
	}
	*att = Attachment{
		Name:       name,
		Role:       role,
		ID:         b.nextID,
		Port:       l.A(),
		Link:       l,
		Switch:     sw,
		SwitchPort: swPortIdx,
		Domain:     b.Domain(sw),
		Eng:        eng,
	}
	b.nextID++
	b.attached = append(b.attached, att)
	return att, nil
}

// Discover runs the fabric-manager pass: one breadth-first search per
// *home switch* (endpoints vastly outnumber switches in any realistic
// topology), fanning each result out to the switch's co-located
// endpoints and installing all equal-cost shortest-path output
// candidates in each switch's PBR table. It must be called after the
// topology is complete and before traffic flows.
func (b *Builder) Discover() error {
	if len(b.attached) == 0 {
		return fmt.Errorf("fabric: no endpoints attached")
	}
	b.InstallRoutesFull(DeadSet{})
	if b.shard != nil {
		b.installLookahead()
	}
	b.discovered = true
	return nil
}

// installLookahead is the fabric-manager half of the coordinator's
// per-pair lookahead matrix: for every ordered domain pair it finds the
// minimum propagation delay over the cut links joining them and
// declares it to the coordinator. Every cross-shard message rides a cut
// link and carries at least that link's propagation delay (link.NewCross
// enforces the floor per link at construction), so the per-pair minimum
// is a safe lookahead — and for pairs joined only by long-haul optics it
// is orders of magnitude wider than the coordinator's default window,
// which is what lets pod-aligned shards run wide rounds. Pairs with no
// cut link at all can never exchange a message and are released to
// sim.MaxTime so they impose no coupling.
func (b *Builder) installLookahead() {
	co := b.shard.Coord
	n := co.Shards()
	min := make([]sim.Time, n*n) // 0 = no cut link seen for the pair
	for _, l := range b.links {
		da, db := b.Domain(l.a), b.Domain(l.b)
		if da == db {
			continue
		}
		for _, k := range [2]int{da*n + db, db*n + da} {
			if min[k] == 0 || l.prop < min[k] {
				min[k] = l.prop
			}
		}
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			if m := min[src*n+dst]; m > 0 {
				co.SetLookahead(src, dst, m)
			} else {
				co.SetLookahead(src, dst, sim.MaxTime)
			}
		}
	}
}

// DeadSet names the topology elements the fabric manager has declared
// dead, each indexed in topology order: Switches by switch creation
// index, ISLs by inter-switch-link creation index, Atts by attachment
// ID. Nil slices mean none dead.
type DeadSet struct {
	Switches []bool
	ISLs     []bool
	Atts     []bool
}

// routeEngine is the builder's route-computation state: CSR adjacency
// over the live switch graph, reused BFS scratch, and — per home switch
// — the distance vector, the contributing-edge bitmap (every ISL on any
// shortest path toward that home), and the arena backing the installed
// ECMP candidate slices. All of it is reused across recomputes, so
// route installation is allocation-flat after the first pass.
type routeEngine struct {
	// CSR adjacency over the live switch graph (rebuilt per install).
	adjOff  []int32
	adjTo   []int32
	adjPort []int32
	adjLink []int32
	cursor  []int32

	queue []int32

	// Per home switch (indexed by switch creation index):
	dist    [][]int32  // BFS distance vector from the last recompute
	contrib [][]uint64 // bitmap over ISL indexes: the shortest-path DAG
	arena   [][]int    // backing storage for installed ECMP out-slices

	homeAtts [][]int32 // switch index -> attachment indexes homed there
	homeOut  [][]int   // attachment index -> cached {SwitchPort} route
	nAtts    int       // attachment count homeAtts was built for

	unreach []bool // attachment index -> severed (dead home or link)
	frozen  []bool // switch index -> dead with its table cloned (see freezeDead)

	// Incremental-repair scratch.
	affMark  []bool
	affected []int32
	touched  []int32
}

const distUnreached = -1

// ensure sizes the engine's per-topology state; cheap when already sized.
func (re *routeEngine) ensure(b *Builder) {
	S, L, A := len(b.switches), len(b.links), len(b.attached)
	if cap(re.adjOff) < S+1 {
		re.adjOff = make([]int32, S+1)
		re.cursor = make([]int32, S)
		re.queue = make([]int32, S)
		re.affMark = make([]bool, S)
		re.affected = make([]int32, 0, S)
		re.touched = make([]int32, 0, S)
		re.frozen = make([]bool, S)
	}
	re.adjOff = re.adjOff[:S+1]
	re.cursor = re.cursor[:S]
	re.queue = re.queue[:S]
	re.affMark = re.affMark[:S]
	re.frozen = re.frozen[:S]
	if cap(re.adjTo) < 2*L {
		re.adjTo = make([]int32, 2*L)
		re.adjPort = make([]int32, 2*L)
		re.adjLink = make([]int32, 2*L)
	}
	re.adjTo = re.adjTo[:2*L]
	re.adjPort = re.adjPort[:2*L]
	re.adjLink = re.adjLink[:2*L]
	if len(re.dist) > 0 && (len(re.dist[0]) != S || len(re.contrib[0]) != (L+63)/64) {
		// Topology grew since the last compute: per-home rows are sized
		// for the old graph, so rebuild them.
		re.dist, re.contrib, re.arena = re.dist[:0], re.contrib[:0], re.arena[:0]
	}
	for len(re.dist) < S {
		re.dist = append(re.dist, make([]int32, S))
		re.contrib = append(re.contrib, make([]uint64, (L+63)/64))
		re.arena = append(re.arena, nil)
	}
	for len(re.homeOut) < A {
		re.homeOut = append(re.homeOut, nil)
	}
	for len(re.unreach) < A {
		re.unreach = append(re.unreach, false)
	}
	if re.nAtts != A || len(re.homeAtts) != S {
		if cap(re.homeAtts) < S {
			re.homeAtts = make([][]int32, S)
		}
		re.homeAtts = re.homeAtts[:S]
		for i := range re.homeAtts {
			re.homeAtts[i] = re.homeAtts[i][:0]
		}
		for ai, att := range b.attached {
			h := att.Switch.idx
			re.homeAtts[h] = append(re.homeAtts[h], int32(ai))
		}
		re.nAtts = A
	}
}

// rebuildAdj fills the CSR adjacency with every edge whose link and
// both endpoint switches are alive.
func (b *Builder) rebuildAdj(dead DeadSet) {
	re := &b.re
	for i := range re.cursor {
		re.cursor[i] = 0
	}
	for li, l := range b.links {
		if islDead(dead, li, l) {
			continue
		}
		re.cursor[l.a.idx]++
		re.cursor[l.b.idx]++
	}
	off := int32(0)
	for i, d := range re.cursor {
		re.adjOff[i] = off
		off += d
		re.cursor[i] = re.adjOff[i]
	}
	re.adjOff[len(b.switches)] = off
	for li, l := range b.links {
		if islDead(dead, li, l) {
			continue
		}
		ai, bi := int32(l.a.idx), int32(l.b.idx)
		ca := re.cursor[ai]
		re.adjTo[ca], re.adjPort[ca], re.adjLink[ca] = bi, int32(l.aPort), int32(li)
		re.cursor[ai]++
		cb := re.cursor[bi]
		re.adjTo[cb], re.adjPort[cb], re.adjLink[cb] = ai, int32(l.bPort), int32(li)
		re.cursor[bi]++
	}
}

func islDead(dead DeadSet, li int, l *isl) bool {
	return deadAt(dead.ISLs, li) || deadAt(dead.Switches, l.a.idx) || deadAt(dead.Switches, l.b.idx)
}

func deadAt(v []bool, i int) bool { return v != nil && v[i] }

// freezeDead clones the route slices of every switch that just died.
// A crashed switch keeps its table — a healed switch forwards on it
// until the manager's next re-fill — but installed slices alias the
// per-home arenas, which recomputes for the surviving topology rewrite.
// Cloning at death pins the exact pre-death content (and does so
// identically on the incremental and full-recompute paths).
func (b *Builder) freezeDead(dead DeadSet) {
	re := &b.re
	for s, sw := range b.switches {
		if !deadAt(dead.Switches, s) {
			re.frozen[s] = false
			continue
		}
		if re.frozen[s] {
			continue
		}
		re.frozen[s] = true
		for dst, outs := range sw.routes {
			if outs != nil {
				sw.routes[dst] = append(make([]int, 0, len(outs)), outs...)
			}
		}
	}
}

// homeRoute returns the cached single-port route an endpoint's home
// switch forwards on.
func (b *Builder) homeRoute(ai int) []int {
	re := &b.re
	if re.homeOut[ai] == nil {
		re.homeOut[ai] = []int{b.attached[ai].SwitchPort}
	}
	return re.homeOut[ai]
}

// bfsHome fills home h's distance vector over the current adjacency.
func (b *Builder) bfsHome(h int) {
	re := &b.re
	dist := re.dist[h]
	for i := range dist {
		dist[i] = distUnreached
	}
	dist[h] = 0
	re.queue[0] = int32(h)
	head, tail := 0, 1
	for head < tail {
		cur := re.queue[head]
		head++
		d := dist[cur] + 1
		for e := re.adjOff[cur]; e < re.adjOff[cur+1]; e++ {
			if to := re.adjTo[e]; dist[to] == distUnreached {
				dist[to] = d
				re.queue[tail] = to
				tail++
			}
		}
	}
}

// outsFor appends switch s's equal-cost candidate ports toward home h
// to the home's arena and returns the installed slice (ports ascending;
// adjacency lists them in link-creation order, which is ascending per
// switch, so the insertion sort is a near-no-op safety net). Bits for
// every used edge are set in the home's contributing-edge bitmap.
func (b *Builder) outsFor(h, s int) []int {
	re := &b.re
	dist := re.dist[h]
	arena := re.arena[h]
	start := len(arena)
	want := dist[s] - 1
	for e := re.adjOff[s]; e < re.adjOff[s+1]; e++ {
		if dist[re.adjTo[e]] == want {
			arena = append(arena, int(re.adjPort[e]))
			li := re.adjLink[e]
			re.contrib[h][li>>6] |= 1 << (li & 63)
		}
	}
	outs := arena[start:len(arena):len(arena)]
	for i := 1; i < len(outs); i++ {
		for j := i; j > 0 && outs[j] < outs[j-1]; j-- {
			outs[j], outs[j-1] = outs[j-1], outs[j]
		}
	}
	re.arena[h] = arena
	return outs
}

// installHome recomputes and installs the routes toward every live
// endpoint homed at switch h: one BFS, then a fan-out over the home's
// co-located attachments, all sharing the same per-switch candidate
// slices. The home's distance vector and contributing-edge bitmap are
// left describing the new shortest-path DAG.
func (b *Builder) installHome(h int, dead DeadSet) {
	re := &b.re
	b.bfsHome(h)
	bm := re.contrib[h]
	for i := range bm {
		bm[i] = 0
	}
	re.arena[h] = re.arena[h][:0]
	atts := re.homeAtts[h]
	for s, sw := range b.switches {
		if deadAt(dead.Switches, s) {
			continue
		}
		if s == h {
			for _, ai := range atts {
				if !deadAt(dead.Atts, int(ai)) {
					sw.InstallRoute(b.attached[ai].ID, b.homeRoute(int(ai)))
				} else {
					sw.ClearRoute(b.attached[ai].ID)
				}
			}
			continue
		}
		if re.dist[h][s] == distUnreached {
			// Partitioned from home: no route (matters on the
			// incremental path, where a stale entry must be cleared).
			for _, ai := range atts {
				sw.ClearRoute(b.attached[ai].ID)
			}
			continue
		}
		outs := b.outsFor(h, s)
		for _, ai := range atts {
			if !deadAt(dead.Atts, int(ai)) {
				sw.InstallRoute(b.attached[ai].ID, outs)
			} else {
				sw.ClearRoute(b.attached[ai].ID)
			}
		}
	}
}

// InstallRoutesFull clears and re-fills the PBR table of every live
// switch with equal-cost shortest-path routes over the live topology:
// one BFS per home switch, fanned out to its co-located endpoints. It
// returns the number of unreachable attachments — endpoints whose home
// switch or endpoint link is dead. Routes to those are simply absent,
// so live switches drop (lossy mode) or panic (static mode) instead of
// forwarding into a black hole.
func (b *Builder) InstallRoutesFull(dead DeadSet) (unreachable int) {
	re := &b.re
	re.ensure(b)
	b.freezeDead(dead)
	b.rebuildAdj(dead)
	maxID := flit.PortID(0)
	if len(b.attached) > 0 {
		maxID = b.attached[len(b.attached)-1].ID
	}
	for s, sw := range b.switches {
		if !deadAt(dead.Switches, s) {
			sw.ClearRoutes()
			sw.reserveRoutes(maxID)
		}
	}
	for ai := range b.attached {
		re.unreach[ai] = deadAt(dead.Switches, b.attached[ai].Switch.idx) || deadAt(dead.Atts, ai)
	}
	for h := range b.switches {
		if deadAt(dead.Switches, h) || len(re.homeAtts[h]) == 0 {
			continue
		}
		b.installHome(h, dead)
	}
	for ai := range b.attached {
		if re.unreach[ai] {
			unreachable++
		}
	}
	return unreachable
}

// RepairRoutes is the incremental route-around: given the current dead
// set plus the indexes of the elements that *just* died (newSw, newISL
// in topology order; newAtt by attachment ID), it recomputes only the
// destinations whose shortest-path DAG used a dead element — tracked by
// the per-destination contributing-edge bitmaps — and, within those,
// falls back to a per-home BFS only when a death actually changed
// distances. A death that leaves every affected switch with surviving
// equal-cost candidates (the common case in multi-path topologies)
// costs one candidate-list rebuild per touched switch. Recoveries are
// topology-wide events: callers must use InstallRoutesFull for those.
//
// The resulting tables are identical to what InstallRoutesFull would
// produce: removing a non-DAG edge can neither shorten any path nor
// create a new equal-cost candidate, so untouched destinations keep
// byte-identical routes (the equivalence is pinned by tests).
func (b *Builder) RepairRoutes(dead DeadSet, newSw, newISL, newAtt []int) (unreachable int) {
	re := &b.re
	re.ensure(b)
	b.freezeDead(dead)
	b.rebuildAdj(dead)

	// Newly dead endpoint links (and endpoints of newly dead switches):
	// clear their routes everywhere live and mark them severed.
	severAtt := func(ai int) {
		re.unreach[ai] = true
		id := b.attached[ai].ID
		for s, sw := range b.switches {
			if !deadAt(dead.Switches, s) {
				sw.ClearRoute(id)
			}
		}
	}
	for _, ai := range newAtt {
		severAtt(ai)
	}

	// Affected destinations: every home whose contributing-edge bitmap
	// holds a newly dead ISL, or any ISL incident to a newly dead
	// switch. A dead home's endpoints are severed rather than rerouted.
	affected := re.affected[:0]
	markHomesUsing := func(li int) {
		w, bit := li>>6, uint64(1)<<(li&63)
		for h := range b.switches {
			if !re.affMark[h] && len(re.homeAtts[h]) > 0 && re.contrib[h][w]&bit != 0 {
				re.affMark[h] = true
				affected = append(affected, int32(h))
			}
		}
	}
	for _, li := range newISL {
		markHomesUsing(li)
	}
	for _, si := range newSw {
		for li, l := range b.links {
			if l.a.idx == si || l.b.idx == si {
				markHomesUsing(li)
			}
		}
		for _, ai := range re.homeAtts[si] {
			if !re.unreach[ai] {
				severAtt(int(ai))
			}
		}
	}

	for _, h32 := range affected {
		h := int(h32)
		re.affMark[h] = false
		if deadAt(dead.Switches, h) {
			continue
		}
		b.repairHome(h, dead, newSw, newISL)
	}
	re.affected = affected[:0]

	for ai := range b.attached {
		if re.unreach[ai] {
			unreachable++
		}
	}
	return unreachable
}

// repairHome repairs one destination after a set of element deaths its
// DAG used. Fast path: when every switch that lost a candidate edge
// still has another equal-cost candidate, distances are provably
// unchanged fabric-wide, so only those switches' candidate lists are
// rebuilt. Otherwise the home is recomputed with a fresh BFS.
func (b *Builder) repairHome(h int, dead DeadSet, newSw, newISL []int) {
	re := &b.re
	dist := re.dist[h]
	bm := re.contrib[h]
	touched := re.touched[:0]
	needBFS := false

	// upperOf reports the switch whose candidate list contained the dead
	// DAG edge li (the endpoint farther from home), or -1 when neither
	// table needs fixing (endpoint dead, or edge not in this DAG).
	upperOf := func(li int) int {
		if bm[li>>6]&(1<<(li&63)) == 0 {
			return -1
		}
		bm[li>>6] &^= 1 << (li & 63)
		l := b.links[li]
		x := l.a.idx
		if dist[l.b.idx] > dist[l.a.idx] {
			x = l.b.idx
		}
		if deadAt(dead.Switches, x) {
			return -1
		}
		return x
	}
	check := func(li int) {
		x := upperOf(li)
		if x < 0 || needBFS {
			return
		}
		// Does x still have a live equal-cost candidate toward h?
		want := dist[x] - 1
		alive := false
		for e := re.adjOff[x]; e < re.adjOff[x+1]; e++ {
			if dist[re.adjTo[e]] == want {
				alive = true
				break
			}
		}
		if !alive {
			needBFS = true
			return
		}
		for _, t := range touched {
			if int(t) == x {
				return
			}
		}
		touched = append(touched, int32(x))
	}
	for _, li := range newISL {
		check(li)
	}
	for _, si := range newSw {
		for li, l := range b.links {
			if l.a.idx == si || l.b.idx == si {
				check(li)
			}
		}
	}
	re.touched = touched[:0]

	if needBFS {
		b.installHome(h, dead)
		return
	}
	// Distance-preserving: rebuild only the touched switches' candidate
	// lists, in ascending switch order for determinism.
	for i := 1; i < len(touched); i++ {
		for j := i; j > 0 && touched[j] < touched[j-1]; j-- {
			touched[j], touched[j-1] = touched[j-1], touched[j]
		}
	}
	for _, x32 := range touched {
		x := int(x32)
		outs := b.outsFor(h, x)
		for _, ai := range re.homeAtts[h] {
			if !re.unreach[ai] && !deadAt(dead.Atts, int(ai)) {
				b.switches[x].InstallRoute(b.attached[ai].ID, outs)
			}
		}
	}
}

// RouteTableDump renders every switch's PBR table deterministically —
// the witness the incremental-vs-full repair equivalence tests compare.
func (b *Builder) RouteTableDump() string {
	var sb strings.Builder
	for _, sw := range b.switches {
		fmt.Fprintf(&sb, "%s:", sw.name)
		for dst, outs := range sw.routes {
			if outs != nil {
				fmt.Fprintf(&sb, " %d->%v", dst, outs)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LinkSideDomains reports the failure domains of a link's two sides (A,
// B). Endpoint links live wholly in their switch's domain; inter-switch
// links may span two. ok is false for links the builder doesn't own.
func (b *Builder) LinkSideDomains(l *link.Link) (da, db int, ok bool) {
	for _, rec := range b.links {
		if rec.link == l {
			return b.Domain(rec.a), b.Domain(rec.b), true
		}
	}
	for _, att := range b.attached {
		if att.Link == l {
			return att.Domain, att.Domain, true
		}
	}
	return 0, 0, false
}

// ISLLinks lists the inter-switch links in creation order.
func (b *Builder) ISLLinks() []*link.Link {
	out := make([]*link.Link, len(b.links))
	for i, l := range b.links {
		out[i] = l.link
	}
	return out
}

// Attachments lists all endpoint attachments in ID order.
func (b *Builder) Attachments() []*Attachment { return b.attached }

// Switches lists the fabric switches.
func (b *Builder) Switches() []*Switch { return b.switches }

// Lookup finds an attachment by name.
func (b *Builder) Lookup(name string) *Attachment {
	for _, a := range b.attached {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Render draws the topology as ASCII art — the regeneration of the
// paper's Figure 1b (composable infrastructure overview).
func (b *Builder) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Composable infrastructure: %d switches, %d endpoints\n",
		len(b.switches), len(b.attached))
	for _, sw := range b.switches {
		fmt.Fprintf(&sb, "\n[FS %s] (%d ports, %v crossbar)\n", sw.name, sw.Ports(), sw.cfg.Latency)
		for _, l := range b.links {
			if l.a == sw {
				fmt.Fprintf(&sb, "  port %-2d ==== [FS %s] port %d\n", l.aPort, l.b.name, l.bPort)
			} else if l.b == sw {
				fmt.Fprintf(&sb, "  port %-2d ==== [FS %s] port %d\n", l.bPort, l.a.name, l.aPort)
			}
		}
		for _, a := range b.attached {
			if a.Switch == sw {
				adapter := "FHA"
				if a.Role == RoleFAM || a.Role == RoleFAA {
					adapter = "FEA"
				}
				fmt.Fprintf(&sb, "  port %-2d ---- [%s] %-7s %-12s (PBR %d, %s)\n",
					a.SwitchPort, adapter, a.Role, a.Name, a.ID, a.Port.Config().Phys)
			}
		}
	}
	return sb.String()
}
