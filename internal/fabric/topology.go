package fabric

import (
	"fmt"
	"sort"
	"strings"

	"fcc/internal/flit"
	"fcc/internal/link"
	"fcc/internal/sim"
)

// Role classifies a fabric endpoint for management and rendering.
type Role uint8

// Endpoint roles (Figure 1b).
const (
	RoleHost    Role = iota // a host server behind an FHA
	RoleFAM                 // fabric-attached memory chassis (behind an FEA)
	RoleFAA                 // fabric-attached accelerator chassis
	RoleManager             // the fabric manager / central arbiter
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleHost:
		return "host"
	case RoleFAM:
		return "FAM"
	case RoleFAA:
		return "FAA"
	case RoleManager:
		return "manager"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Attachment is what an endpoint receives when it joins the fabric: its
// assigned PBR ID and the link port it sends/receives on.
type Attachment struct {
	Name string
	Role Role
	ID   flit.PortID
	Port *link.Port
	// Link is the full endpoint link (both directions) — the handle the
	// fault injector and the manager's health sweep address it by.
	Link *link.Link
	// Switch and SwitchPort identify where the endpoint attaches.
	Switch     *Switch
	SwitchPort int
	// Domain is the failure domain (shard) the endpoint belongs to —
	// its home switch's domain. Always 0 on an unsharded builder.
	Domain int
	// Eng is the engine the endpoint's model code must schedule on:
	// its domain's private engine under sharding, the shared engine
	// otherwise.
	Eng *sim.Engine
}

// Builder assembles a fabric topology: switches, inter-switch links, and
// endpoint attachments. After construction, Discover plays the fabric
// manager: it walks the topology and installs PBR routes on every
// switch, exactly as the paper describes the FM "filling up the
// switching table" (§2.1).
type Builder struct {
	eng        *sim.Engine
	switches   []*Switch
	links      []*isl
	attached   []*Attachment
	nextID     flit.PortID
	discovered bool

	// Sharded assembly (nil for the classic single-engine fabric): each
	// switch and its attached endpoints live in one failure domain with
	// a private engine; inter-switch links whose ends fall in different
	// domains become cross-shard links synchronized by the coordinator.
	shard    *Sharding
	swDomain map[*Switch]int
}

// Sharding partitions a fabric across the failure domains of a
// Coordinator. DomainOf maps a switch's creation index (the order of
// AddSwitch calls) to its domain; endpoints inherit their home switch's
// domain, which makes a domain exactly "a switch plus its attached
// endpoints" (or a contiguous group of switches when there are more
// switches than shards).
type Sharding struct {
	Coord    *sim.Coordinator
	DomainOf func(switchIdx int) int
}

// isl is an inter-switch link record.
type isl struct {
	a, b         *Switch
	aPort, bPort int
	link         *link.Link
	prop         sim.Time // wire propagation delay, for lookahead discovery
}

// NewBuilder returns an empty topology bound to eng.
func NewBuilder(eng *sim.Engine) *Builder {
	return &Builder{eng: eng}
}

// NewShardedBuilder returns a topology partitioned across sh's domains.
// The builder's base engine is domain 0's; every switch and endpoint is
// created on its own domain's engine.
func NewShardedBuilder(sh Sharding) *Builder {
	return &Builder{
		eng:      sh.Coord.Engine(0),
		shard:    &sh,
		swDomain: make(map[*Switch]int),
	}
}

// Domain reports the failure domain a switch was assigned to (0 on an
// unsharded builder).
func (b *Builder) Domain(sw *Switch) int {
	if b.shard == nil {
		return 0
	}
	return b.swDomain[sw]
}

// engineFor returns the engine a switch's domain runs on.
func (b *Builder) engineFor(sw *Switch) *sim.Engine {
	if b.shard == nil {
		return b.eng
	}
	return b.shard.Coord.Engine(b.swDomain[sw])
}

// AddSwitch creates a switch (on its domain's engine when sharded).
func (b *Builder) AddSwitch(name string, cfg SwitchConfig) *Switch {
	eng := b.eng
	var dom int
	if b.shard != nil {
		dom = b.shard.DomainOf(len(b.switches))
		if dom < 0 || dom >= b.shard.Coord.Shards() {
			panic(fmt.Sprintf("fabric: DomainOf(%d) = %d out of range [0,%d)",
				len(b.switches), dom, b.shard.Coord.Shards()))
		}
		eng = b.shard.Coord.Engine(dom)
	}
	sw := newSwitch(eng, name, cfg)
	b.switches = append(b.switches, sw)
	if b.shard != nil {
		b.swDomain[sw] = dom
	}
	return sw
}

// ConnectSwitches joins two switches with a link (a PBR link within a
// domain, or an HBR link between domains — routing treats them alike).
// When the two switches live in different failure domains the link is a
// cross-shard link: its wire messages travel through the coordinator's
// mailboxes, and its propagation delay must be at least the
// coordinator's lookahead window.
func (b *Builder) ConnectSwitches(x, y *Switch, cfg link.Config) error {
	name := fmt.Sprintf("%s<->%s", x.name, y.name)
	var l *link.Link
	var err error
	if dx, dy := b.Domain(x), b.Domain(y); b.shard != nil && dx != dy {
		co := b.shard.Coord
		if cfg.Phys.Propagation < co.Window() {
			return fmt.Errorf("fabric: cross-domain link %s propagation %v below the coordinator lookahead window %v",
				name, cfg.Phys.Propagation, co.Window())
		}
		l, err = link.NewCross(name, cfg, co.Engine(dx), co.Engine(dy),
			co.Mailbox(dx, dy), co.Mailbox(dy, dx))
	} else {
		l, err = link.New(b.engineFor(x), name, cfg)
	}
	if err != nil {
		return err
	}
	xp := x.attach(l.A())
	yp := y.attach(l.B())
	b.links = append(b.links, &isl{a: x, b: y, aPort: xp, bPort: yp, link: l, prop: cfg.Phys.Propagation})
	return nil
}

// AttachEndpoint joins an endpoint (host FHA, FAM/FAA FEA) to a switch
// and assigns it the next PBR ID. The returned Attachment's Port is the
// endpoint side; callers attach their own sink (usually a txn.Endpoint).
func (b *Builder) AttachEndpoint(sw *Switch, name string, role Role, cfg link.Config) (*Attachment, error) {
	if b.nextID > flit.MaxPortID {
		return nil, fmt.Errorf("fabric: PBR ID space exhausted (12-bit, max %d endpoints)", flit.MaxPortID+1)
	}
	eng := b.engineFor(sw)
	l, err := link.New(eng, fmt.Sprintf("%s<->%s", name, sw.name), cfg)
	if err != nil {
		return nil, err
	}
	swPortIdx := sw.attach(l.B())
	att := &Attachment{
		Name:       name,
		Role:       role,
		ID:         b.nextID,
		Port:       l.A(),
		Link:       l,
		Switch:     sw,
		SwitchPort: swPortIdx,
		Domain:     b.Domain(sw),
		Eng:        eng,
	}
	b.nextID++
	b.attached = append(b.attached, att)
	return att, nil
}

// Discover runs the fabric-manager pass: breadth-first search from every
// switch to every endpoint, installing all equal-cost shortest-path
// output candidates in each switch's PBR table. It must be called after
// the topology is complete and before traffic flows.
func (b *Builder) Discover() error {
	if len(b.attached) == 0 {
		return fmt.Errorf("fabric: no endpoints attached")
	}
	b.installRoutes(routeExclusions{})
	if b.shard != nil {
		b.installLookahead()
	}
	b.discovered = true
	return nil
}

// installLookahead is the fabric-manager half of the coordinator's
// per-pair lookahead matrix: for every ordered domain pair it finds the
// minimum propagation delay over the cut links joining them and
// declares it to the coordinator. Every cross-shard message rides a cut
// link and carries at least that link's propagation delay (link.NewCross
// enforces the floor per link at construction), so the per-pair minimum
// is a safe lookahead — and for pairs joined only by long-haul optics it
// is orders of magnitude wider than the coordinator's default window,
// which is what lets pod-aligned shards run wide rounds. Pairs with no
// cut link at all can never exchange a message and are released to
// sim.MaxTime so they impose no coupling.
func (b *Builder) installLookahead() {
	co := b.shard.Coord
	n := co.Shards()
	min := make([]sim.Time, n*n) // 0 = no cut link seen for the pair
	for _, l := range b.links {
		da, db := b.Domain(l.a), b.Domain(l.b)
		if da == db {
			continue
		}
		for _, k := range [2]int{da*n + db, db*n + da} {
			if min[k] == 0 || l.prop < min[k] {
				min[k] = l.prop
			}
		}
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			if m := min[src*n+dst]; m > 0 {
				co.SetLookahead(src, dst, m)
			} else {
				co.SetLookahead(src, dst, sim.MaxTime)
			}
		}
	}
}

// routeExclusions restricts route computation to the live topology: the
// manager passes the switches and links it has declared dead so the
// re-fill routes around them.
type routeExclusions struct {
	deadSwitch map[*Switch]bool
	deadLink   map[*link.Link]bool
}

// installRoutes clears and re-fills the PBR table of every live switch
// with equal-cost shortest-path routes over the non-excluded topology.
// It returns the attachments that are unreachable — endpoints whose home
// switch or endpoint link is dead. Routes to those are simply absent, so
// live switches drop (lossy mode) or panic (static mode) instead of
// forwarding into a black hole.
func (b *Builder) installRoutes(ex routeExclusions) (unreachable []*Attachment) {
	// adjacency: switch index -> list of (neighbor switch index, out port)
	idx := make(map[*Switch]int, len(b.switches))
	for i, s := range b.switches {
		idx[s] = i
	}
	type edge struct{ to, port int }
	adj := make([][]edge, len(b.switches))
	for _, l := range b.links {
		if ex.deadLink[l.link] || ex.deadSwitch[l.a] || ex.deadSwitch[l.b] {
			continue
		}
		ai, bi := idx[l.a], idx[l.b]
		adj[ai] = append(adj[ai], edge{to: bi, port: l.aPort})
		adj[bi] = append(adj[bi], edge{to: ai, port: l.bPort})
	}
	for _, sw := range b.switches {
		if !ex.deadSwitch[sw] {
			sw.ClearRoutes()
		}
	}
	// For each endpoint, BFS over the live switch graph from its home
	// switch; each switch routes toward the endpoint via every neighbor
	// that is one hop closer (equal-cost multipath).
	for _, att := range b.attached {
		if ex.deadSwitch[att.Switch] || ex.deadLink[att.Link] {
			unreachable = append(unreachable, att)
			continue
		}
		home := idx[att.Switch]
		dist := make([]int, len(b.switches))
		for i := range dist {
			dist[i] = -1
		}
		dist[home] = 0
		queue := []int{home}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range adj[cur] {
				if dist[e.to] == -1 {
					dist[e.to] = dist[cur] + 1
					queue = append(queue, e.to)
				}
			}
		}
		for si, sw := range b.switches {
			if ex.deadSwitch[sw] {
				continue
			}
			if si == home {
				sw.InstallRoute(att.ID, []int{att.SwitchPort})
				continue
			}
			if dist[si] == -1 {
				continue // partitioned: unreachable from this switch
			}
			var outs []int
			for _, e := range adj[si] {
				if dist[e.to] == dist[si]-1 {
					outs = append(outs, e.port)
				}
			}
			sort.Ints(outs)
			sw.InstallRoute(att.ID, outs)
		}
	}
	return unreachable
}

// LinkSideDomains reports the failure domains of a link's two sides (A,
// B). Endpoint links live wholly in their switch's domain; inter-switch
// links may span two. ok is false for links the builder doesn't own.
func (b *Builder) LinkSideDomains(l *link.Link) (da, db int, ok bool) {
	for _, rec := range b.links {
		if rec.link == l {
			return b.Domain(rec.a), b.Domain(rec.b), true
		}
	}
	for _, att := range b.attached {
		if att.Link == l {
			return att.Domain, att.Domain, true
		}
	}
	return 0, 0, false
}

// ISLLinks lists the inter-switch links in creation order.
func (b *Builder) ISLLinks() []*link.Link {
	out := make([]*link.Link, len(b.links))
	for i, l := range b.links {
		out[i] = l.link
	}
	return out
}

// Attachments lists all endpoint attachments in ID order.
func (b *Builder) Attachments() []*Attachment { return b.attached }

// Switches lists the fabric switches.
func (b *Builder) Switches() []*Switch { return b.switches }

// Lookup finds an attachment by name.
func (b *Builder) Lookup(name string) *Attachment {
	for _, a := range b.attached {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Render draws the topology as ASCII art — the regeneration of the
// paper's Figure 1b (composable infrastructure overview).
func (b *Builder) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Composable infrastructure: %d switches, %d endpoints\n",
		len(b.switches), len(b.attached))
	for _, sw := range b.switches {
		fmt.Fprintf(&sb, "\n[FS %s] (%d ports, %v crossbar)\n", sw.name, sw.Ports(), sw.cfg.Latency)
		for _, l := range b.links {
			if l.a == sw {
				fmt.Fprintf(&sb, "  port %-2d ==== [FS %s] port %d\n", l.aPort, l.b.name, l.bPort)
			} else if l.b == sw {
				fmt.Fprintf(&sb, "  port %-2d ==== [FS %s] port %d\n", l.bPort, l.a.name, l.aPort)
			}
		}
		for _, a := range b.attached {
			if a.Switch == sw {
				adapter := "FHA"
				if a.Role == RoleFAM || a.Role == RoleFAA {
					adapter = "FEA"
				}
				fmt.Fprintf(&sb, "  port %-2d ---- [%s] %-7s %-12s (PBR %d, %s)\n",
					a.SwitchPort, adapter, a.Role, a.Name, a.ID, a.Port.Config().Phys)
			}
		}
	}
	return sb.String()
}
