package fabric

import (
	"strings"
	"testing"

	"fcc/internal/flit"
	"fcc/internal/link"
	"fcc/internal/phys"
	"fcc/internal/sim"
	"fcc/internal/txn"
)

// star builds host(s) and device(s) around one switch and returns the
// endpoints, with the device echoing Mem and IO requests.
func star(t *testing.T, hosts, devs int, devTime sim.Time) (*sim.Engine, *Builder, []*txn.Endpoint, []*txn.Endpoint) {
	t.Helper()
	eng := sim.NewEngine()
	b := NewBuilder(eng)
	sw := b.AddSwitch("fs0", DefaultSwitchConfig())
	mk := func(name string, role Role) *txn.Endpoint {
		att, err := b.AttachEndpoint(sw, name, role, link.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ep := txn.NewEndpoint(eng, att.ID, att.Port, 0)
		att.Port.SetSink(ep)
		return ep
	}
	var hs, ds []*txn.Endpoint
	for i := 0; i < hosts; i++ {
		hs = append(hs, mk("host"+string(rune('0'+i)), RoleHost))
	}
	for i := 0; i < devs; i++ {
		d := mk("fam"+string(rune('0'+i)), RoleFAM)
		d.Handler = func(req *flit.Packet, reply func(*flit.Packet)) {
			eng.After(devTime, func() {
				switch req.Op {
				case flit.OpMemRd:
					reply(req.Response(flit.OpMemRdData, 64))
				case flit.OpMemWr:
					reply(req.Response(flit.OpMemWrAck, 0))
				case flit.OpIOWr:
					reply(req.Response(flit.OpIOAck, 0))
				case flit.OpIORd:
					reply(req.Response(flit.OpIOData, req.ReqLen))
				}
			})
		}
		ds = append(ds, d)
	}
	if err := b.Discover(); err != nil {
		t.Fatal(err)
	}
	return eng, b, hs, ds
}

func TestSwitchRoutesHostToDevice(t *testing.T) {
	eng, _, hs, ds := star(t, 1, 1, 100*sim.Nanosecond)
	var resp *flit.Packet
	eng.After(0, func() {
		hs[0].Request(&flit.Packet{Chan: flit.ChMem, Op: flit.OpMemRd,
			Dst: ds[0].ID(), Addr: 0x1000}).
			OnComplete(func(p *flit.Packet, err error) { resp = p })
	})
	eng.Run()
	if resp == nil {
		t.Fatal("no response through switch")
	}
	if resp.Op != flit.OpMemRdData {
		t.Fatalf("resp = %v", resp)
	}
	// Request crossed one switch, response crossed it again.
	if resp.Hops != 1 {
		t.Fatalf("response hops = %d, want 1", resp.Hops)
	}
}

func TestSwitchAddsCrossbarLatency(t *testing.T) {
	measure := func(lat sim.Time) sim.Time {
		eng := sim.NewEngine()
		b := NewBuilder(eng)
		cfg := DefaultSwitchConfig()
		cfg.Latency = lat
		sw := b.AddSwitch("fs0", cfg)
		ha, _ := b.AttachEndpoint(sw, "h", RoleHost, link.DefaultConfig())
		da, _ := b.AttachEndpoint(sw, "d", RoleFAM, link.DefaultConfig())
		h := txn.NewEndpoint(eng, ha.ID, ha.Port, 0)
		ha.Port.SetSink(h)
		d := txn.NewEndpoint(eng, da.ID, da.Port, 0)
		da.Port.SetSink(d)
		d.Handler = func(req *flit.Packet, reply func(*flit.Packet)) {
			reply(req.Response(flit.OpMemRdData, 64))
		}
		if err := b.Discover(); err != nil {
			t.Fatal(err)
		}
		var done sim.Time
		eng.After(0, func() {
			h.Request(&flit.Packet{Chan: flit.ChMem, Op: flit.OpMemRd, Dst: da.ID}).
				OnComplete(func(*flit.Packet, error) { done = eng.Now() })
		})
		eng.Run()
		return done
	}
	fast := measure(0)
	slow := measure(100 * sim.Nanosecond)
	delta := slow - fast
	// Two traversals (request + response) of 100ns extra each.
	if delta != 200*sim.Nanosecond {
		t.Fatalf("latency delta = %v, want 200ns", delta)
	}
}

func TestMultiHopRouting(t *testing.T) {
	// host -- fs0 -- fs1 -- fs2 -- dev : three switches in a line.
	eng := sim.NewEngine()
	b := NewBuilder(eng)
	var sws []*Switch
	for _, n := range []string{"fs0", "fs1", "fs2"} {
		sws = append(sws, b.AddSwitch(n, DefaultSwitchConfig()))
	}
	if err := b.ConnectSwitches(sws[0], sws[1], link.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectSwitches(sws[1], sws[2], link.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	ha, _ := b.AttachEndpoint(sws[0], "h", RoleHost, link.DefaultConfig())
	da, _ := b.AttachEndpoint(sws[2], "d", RoleFAM, link.DefaultConfig())
	h := txn.NewEndpoint(eng, ha.ID, ha.Port, 0)
	ha.Port.SetSink(h)
	d := txn.NewEndpoint(eng, da.ID, da.Port, 0)
	da.Port.SetSink(d)
	d.Handler = func(req *flit.Packet, reply func(*flit.Packet)) {
		if req.Hops != 3 {
			t.Errorf("request hops = %d, want 3", req.Hops)
		}
		reply(req.Response(flit.OpMemRdData, 64))
	}
	if err := b.Discover(); err != nil {
		t.Fatal(err)
	}
	ok := false
	eng.After(0, func() {
		h.Request(&flit.Packet{Chan: flit.ChMem, Op: flit.OpMemRd, Dst: da.ID}).
			OnComplete(func(*flit.Packet, error) { ok = true })
	})
	eng.Run()
	if !ok {
		t.Fatal("no response across 3 switches")
	}
}

func TestDiscoverInstallsAllRoutes(t *testing.T) {
	_, b, _, _ := star(t, 3, 3, 0)
	sw := b.Switches()[0]
	if sw.Routes() != 6 {
		t.Fatalf("routes = %d, want 6", sw.Routes())
	}
}

func TestPBRIDsAreSequentialAndBounded(t *testing.T) {
	_, b, hs, ds := star(t, 2, 2, 0)
	want := flit.PortID(0)
	for _, e := range append(hs, ds...) {
		if e.ID() != want {
			t.Fatalf("ID = %d, want %d", e.ID(), want)
		}
		want++
	}
	_ = b
}

func TestManyToOneIncastDelivers(t *testing.T) {
	// 4 hosts hammer one device; everything must complete despite
	// output-queue backpressure at the device's switch port.
	eng, _, hs, ds := star(t, 4, 1, 50*sim.Nanosecond)
	done := 0
	eng.After(0, func() {
		for _, h := range hs {
			h := h
			for i := 0; i < 50; i++ {
				h.Request(&flit.Packet{Chan: flit.ChMem, Op: flit.OpMemRd,
					Dst: ds[0].ID(), Addr: uint64(i * 64)}).
					OnComplete(func(*flit.Packet, error) { done++ })
			}
		}
	})
	eng.Run()
	if done != 200 {
		t.Fatalf("done = %d, want 200", done)
	}
}

func TestBackpressureHoldsInputBuffers(t *testing.T) {
	// Tiny output queue at the switch + a slow device: the switch must
	// stall inputs rather than drop packets.
	eng := sim.NewEngine()
	b := NewBuilder(eng)
	cfg := DefaultSwitchConfig()
	cfg.OutQueueFlits = 9 // one 512B packet's worth
	sw := b.AddSwitch("fs0", cfg)
	ha, _ := b.AttachEndpoint(sw, "h", RoleHost, link.DefaultConfig())
	// Device link is 4x narrower than the host link, so the switch's
	// output queue toward the device fills and inputs must hold.
	devCfg := link.DefaultConfig()
	devCfg.Phys = phys.Gen4x4
	da, _ := b.AttachEndpoint(sw, "d", RoleFAM, devCfg)
	h := txn.NewEndpoint(eng, ha.ID, ha.Port, 0)
	ha.Port.SetSink(h)
	d := txn.NewEndpoint(eng, da.ID, da.Port, 0)
	da.Port.SetSink(d)
	d.Handler = func(req *flit.Packet, reply func(*flit.Packet)) {
		eng.After(sim.Microsecond, func() { reply(req.Response(flit.OpIOAck, 0)) })
	}
	if err := b.Discover(); err != nil {
		t.Fatal(err)
	}
	done := 0
	eng.After(0, func() {
		for i := 0; i < 20; i++ {
			h.Request(&flit.Packet{Chan: flit.ChIO, Op: flit.OpIOWr, Dst: da.ID,
				Size: 512}).OnComplete(func(*flit.Packet, error) { done++ })
		}
	})
	eng.Run()
	if done != 20 {
		t.Fatalf("done = %d, want 20 (backpressure must not drop)", done)
	}
	if sw.HolStalls.Value() == 0 {
		t.Fatal("expected HoL stalls with a 9-flit output queue")
	}
}

func TestAdaptiveRoutingUsesBothPaths(t *testing.T) {
	// Diamond: fs0 connects to fs3 via fs1 and fs2. With adaptive
	// routing, bulk traffic should spread across both middle switches.
	build := func(adaptive bool) (int64, int64, *sim.Engine) {
		eng := sim.NewEngine()
		b := NewBuilder(eng)
		cfg := DefaultSwitchConfig()
		cfg.Adaptive = adaptive
		fs0 := b.AddSwitch("fs0", cfg)
		fs1 := b.AddSwitch("fs1", cfg)
		fs2 := b.AddSwitch("fs2", cfg)
		fs3 := b.AddSwitch("fs3", cfg)
		for _, pr := range [][2]*Switch{{fs0, fs1}, {fs0, fs2}, {fs1, fs3}, {fs2, fs3}} {
			if err := b.ConnectSwitches(pr[0], pr[1], link.DefaultConfig()); err != nil {
				t.Fatal(err)
			}
		}
		ha, _ := b.AttachEndpoint(fs0, "h", RoleHost, link.DefaultConfig())
		da, _ := b.AttachEndpoint(fs3, "d", RoleFAM, link.DefaultConfig())
		h := txn.NewEndpoint(eng, ha.ID, ha.Port, 0)
		ha.Port.SetSink(h)
		d := txn.NewEndpoint(eng, da.ID, da.Port, 0)
		da.Port.SetSink(d)
		d.Handler = func(req *flit.Packet, reply func(*flit.Packet)) {
			reply(req.Response(flit.OpIOAck, 0))
		}
		if err := b.Discover(); err != nil {
			t.Fatal(err)
		}
		eng.After(0, func() {
			for i := 0; i < 60; i++ {
				h.Request(&flit.Packet{Chan: flit.ChIO, Op: flit.OpIOWr,
					Dst: da.ID, Size: 512})
			}
		})
		eng.Run()
		return fs1.PktsRouted.Value(), fs2.PktsRouted.Value(), eng
	}
	f1, f2, _ := build(false)
	if f1 == 0 || f2 != 0 {
		t.Fatalf("deterministic routing used fs1=%d fs2=%d, want all on fs1", f1, f2)
	}
	a1, a2, _ := build(true)
	if a1 == 0 || a2 == 0 {
		t.Fatalf("adaptive routing used fs1=%d fs2=%d, want both", a1, a2)
	}
}

func TestUnroutablePacketPanics(t *testing.T) {
	eng, _, hs, _ := star(t, 1, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("unroutable packet did not panic")
		}
	}()
	eng.After(0, func() {
		hs[0].Request(&flit.Packet{Chan: flit.ChMem, Op: flit.OpMemRd, Dst: 999})
	})
	eng.Run()
}

func TestPortIDSpaceExhaustion(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBuilder(eng)
	b.nextID = flit.MaxPortID // pretend 4095 endpoints already exist
	sw := b.AddSwitch("fs0", DefaultSwitchConfig())
	if _, err := b.AttachEndpoint(sw, "last", RoleHost, link.DefaultConfig()); err != nil {
		t.Fatalf("attaching endpoint 4095: %v", err)
	}
	if _, err := b.AttachEndpoint(sw, "overflow", RoleHost, link.DefaultConfig()); err == nil {
		t.Fatal("PBR ID overflow not detected")
	}
}

func TestRenderContainsTopology(t *testing.T) {
	_, b, _, _ := star(t, 2, 1, 0)
	out := b.Render()
	for _, want := range []string{"FS fs0", "host0", "fam0", "FHA", "FEA", "PBR 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestLookupFindsAttachment(t *testing.T) {
	_, b, _, _ := star(t, 1, 1, 0)
	if b.Lookup("host0") == nil || b.Lookup("fam0") == nil {
		t.Fatal("Lookup failed")
	}
	if b.Lookup("nope") != nil {
		t.Fatal("Lookup invented an attachment")
	}
}

func TestDiscoverWithoutEndpointsFails(t *testing.T) {
	b := NewBuilder(sim.NewEngine())
	b.AddSwitch("fs0", DefaultSwitchConfig())
	if err := b.Discover(); err == nil {
		t.Fatal("Discover with no endpoints should fail")
	}
}
