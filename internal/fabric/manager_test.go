package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"fcc/internal/fault"
	"fcc/internal/flit"
	"fcc/internal/link"
	"fcc/internal/sim"
	"fcc/internal/txn"
)

// ring4 builds fs0..fs3 closed into a ring, an initiator on fs0, and an
// echo device on fs2 — so host->device flows have two equal-cost
// two-hop paths and any single transit-switch loss is route-aroundable.
func ring4(t *testing.T) (*sim.Engine, *Builder, *txn.Endpoint, *txn.Endpoint, []*Switch) {
	t.Helper()
	eng := sim.NewEngine()
	b := NewBuilder(eng)
	var sws []*Switch
	for i := 0; i < 4; i++ {
		sws = append(sws, b.AddSwitch(fmt.Sprintf("fs%d", i), DefaultSwitchConfig()))
	}
	for i := 0; i < 4; i++ {
		if err := b.ConnectSwitches(sws[i], sws[(i+1)%4], link.DefaultConfig()); err != nil {
			t.Fatal(err)
		}
	}
	ha, err := b.AttachEndpoint(sws[0], "h", RoleHost, link.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	da, err := b.AttachEndpoint(sws[2], "d", RoleFAM, link.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := txn.NewEndpoint(eng, ha.ID, ha.Port, 0)
	ha.Port.SetSink(h)
	d := txn.NewEndpoint(eng, da.ID, da.Port, 0)
	da.Port.SetSink(d)
	d.Handler = func(req *flit.Packet, reply func(*flit.Packet)) {
		eng.After(100*sim.Nanosecond, func() { reply(req.Response(flit.OpMemRdData, 64)) })
	}
	if err := b.Discover(); err != nil {
		t.Fatal(err)
	}
	return eng, b, h, d, sws
}

// newInjector registers every switch and ISL of the ring with a fresh
// injector.
func newInjector(eng *sim.Engine, b *Builder, seed uint64) *fault.Injector {
	in := fault.NewInjector(eng, seed)
	for _, sw := range b.Switches() {
		in.Register(sw)
	}
	for _, l := range b.ISLLinks() {
		in.Register(l)
	}
	return in
}

// TestManagerRoutesAroundEachSwitchKill kills each of the four switches
// in turn under continuous retried traffic. Every request must either
// commit (via the alternate ring direction once the manager reroutes)
// or surface a typed error — nothing may wedge or vanish. Transit
// switches (fs1, fs3) must additionally lose zero requests.
func TestManagerRoutesAroundEachSwitchKill(t *testing.T) {
	for victim := 0; victim < 4; victim++ {
		victim := victim
		t.Run(fmt.Sprintf("kill-fs%d", victim), func(t *testing.T) {
			eng, b, h, d, sws := ring4(t)
			m := NewManager(eng, b, DefaultManagerConfig())
			in := newInjector(eng, b, 1)
			// The outage must outlast the whole retry budget (~110us: four
			// 10us timeouts plus 10/20/40us backoffs), or bounded retry
			// alone rides out even an endpoint-home switch kill and no
			// typed error ever surfaces.
			plan := fault.NewPlan("kill-one")
			plan.KillSwitch(20*sim.Microsecond, sws[victim].Name(), 250*sim.Microsecond)
			if err := in.Schedule(plan); err != nil {
				t.Fatal(err)
			}
			h.Timeout = 10 * sim.Microsecond

			const ops = 40
			committed, typed := 0, 0
			eng.Go("load", func(p *sim.Proc) {
				for i := 0; i < ops; i++ {
					_, err := h.RequestRetry(&flit.Packet{
						Chan: flit.ChMem, Op: flit.OpMemRd, Dst: d.ID(), Addr: uint64(i) * 64,
					}, 4, 10*sim.Microsecond).Await(p)
					switch {
					case err == nil:
						committed++
					case errors.Is(err, txn.ErrTimeout) || errors.Is(err, txn.ErrDeviceDown):
						typed++
					default:
						t.Errorf("op %d: untyped error %v", i, err)
					}
					p.Sleep(2 * sim.Microsecond)
				}
				m.Stop()
			})
			eng.Run()

			if committed+typed != ops {
				t.Fatalf("accounting: %d committed + %d typed != %d issued", committed, typed, ops)
			}
			if m.Reroutes.Value() == 0 {
				t.Fatal("manager never rerouted")
			}
			transit := victim == 1 || victim == 3
			if transit && typed != 0 {
				t.Fatalf("lost %d requests to a route-aroundable transit kill", typed)
			}
			if !transit && typed == 0 {
				t.Fatal("endpoint-home switch died yet no request failed — outage not exercised")
			}
			if committed == 0 {
				t.Fatal("nothing committed")
			}
		})
	}
}

// TestManagerDetectsRecovery verifies the heal half: after the victim
// revives, the manager re-admits it and traffic flows clean again.
func TestManagerDetectsRecovery(t *testing.T) {
	eng, b, h, d, sws := ring4(t)
	m := NewManager(eng, b, DefaultManagerConfig())
	in := newInjector(eng, b, 1)
	if err := in.Schedule(fault.NewPlan("flap").
		KillSwitch(20*sim.Microsecond, sws[1].Name(), 50*sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	h.Timeout = 10 * sim.Microsecond
	var postHeal error
	eng.Go("probe", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond) // well past heal + recovery sweep
		_, postHeal = h.Request(&flit.Packet{Chan: flit.ChMem, Op: flit.OpMemRd, Dst: d.ID()}).Await(p)
		m.Stop()
	})
	eng.Run()
	if postHeal != nil {
		t.Fatalf("post-heal request failed: %v", postHeal)
	}
	if m.Recoveries.Value() == 0 {
		t.Fatal("manager never observed the recovery")
	}
	if dead := m.DeadSwitches(); len(dead) != 0 {
		t.Fatalf("switches still declared dead after heal: %v", dead)
	}
	if m.SwitchesFailed.Value() != 1 {
		t.Fatalf("switches_failed = %d, want 1", m.SwitchesFailed.Value())
	}
	if m.TimeToReroute.Count() == 0 {
		t.Fatal("no time-to-reroute observation recorded")
	}
}

// managerChaosRun drives a seeded random fault plan under retried load
// and returns the full stats snapshot as bytes plus the manager (for
// unexported repair-path accounting).
func managerChaosRun(t *testing.T, seed uint64, mcfg ManagerConfig) ([]byte, *Manager) {
	t.Helper()
	eng, b, h, d, _ := ring4(t)
	m := NewManager(eng, b, mcfg)
	in := newInjector(eng, b, seed)
	plan := in.RandomPlan("chaos", 6, 150*sim.Microsecond,
		fault.SwitchCrash, fault.LinkDown, fault.LaneDegrade)
	if err := in.Schedule(plan); err != nil {
		t.Fatal(err)
	}
	h.Timeout = 10 * sim.Microsecond
	eng.Go("load", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			_, err := h.RequestRetry(&flit.Packet{
				Chan: flit.ChMem, Op: flit.OpMemRd, Dst: d.ID(), Addr: uint64(i) * 64,
			}, 4, 10*sim.Microsecond).Await(p)
			if err != nil && !errors.Is(err, txn.ErrTimeout) && !errors.Is(err, txn.ErrDeviceDown) {
				t.Errorf("op %d: untyped error %v", i, err)
			}
			p.Sleep(3 * sim.Microsecond)
		}
		m.Stop()
	})
	eng.Run()

	root := sim.NewStats("ring")
	for _, sw := range b.Switches() {
		sw.RegisterStats(root.Child(sw.Name()))
	}
	h.RegisterStats(root.Child("h"))
	d.RegisterStats(root.Child("d"))
	m.RegisterStats(root.Child("manager"))
	in.RegisterStats(root.Child("fault"))
	raw, err := root.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	return raw, m
}

// TestManagerChaosIsSeedDeterministic runs the identical seeded chaos
// scenario twice: the stats snapshots must be byte-identical, and a
// different seed must not reproduce them.
func TestManagerChaosIsSeedDeterministic(t *testing.T) {
	a, _ := managerChaosRun(t, 11, DefaultManagerConfig())
	bb, _ := managerChaosRun(t, 11, DefaultManagerConfig())
	if !bytes.Equal(a, bb) {
		t.Fatal("same seed produced different stats snapshots")
	}
	if c, _ := managerChaosRun(t, 12, DefaultManagerConfig()); bytes.Equal(a, c) {
		t.Fatal("different seed reproduced the identical snapshot")
	}
}

// TestManagerIncrementalMatchesFullRecompute runs the same seeded chaos
// scenario in the manager's incremental-repair mode (the default) and
// with FullRecompute forced: the snapshots must be byte-identical for
// every seed, and the incremental runs must actually have exercised the
// repair path (not silently fallen back to full re-fills).
func TestManagerIncrementalMatchesFullRecompute(t *testing.T) {
	full := DefaultManagerConfig()
	full.FullRecompute = true
	tookRepairPath := false
	for _, seed := range []uint64{11, 12, 13} {
		inc, m := managerChaosRun(t, seed, DefaultManagerConfig())
		ful, mf := managerChaosRun(t, seed, full)
		if !bytes.Equal(inc, ful) {
			t.Fatalf("seed %d: incremental vs full-recompute snapshots differ", seed)
		}
		if m.repairs > 0 {
			tookRepairPath = true
		}
		if mf.repairs != 0 {
			t.Fatalf("seed %d: FullRecompute mode took %d incremental repairs", seed, mf.repairs)
		}
	}
	if !tookRepairPath {
		t.Fatal("no seed exercised the incremental repair path")
	}
}
