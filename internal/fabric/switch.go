// Package fabric implements the switching fabric of the composable
// infrastructure (§2.2): fabric switches with upstream/downstream ports,
// bounded output queues with backpressure, PBR (port-based routing)
// tables filled by a central fabric manager, adaptive multi-path
// routing, and a topology builder that assembles hosts, FAM and FAA
// chassis, and switches into a cluster — the architecture of Figure 1b.
package fabric

import (
	"fmt"

	"fcc/internal/flit"
	"fcc/internal/link"
	"fcc/internal/sim"
)

// SwitchConfig controls one fabric switch.
type SwitchConfig struct {
	// Latency is the crossbar traversal time per packet. The FabreX
	// datasheet the paper cites claims <100ns non-blocking per port; the
	// Omega testbed is similar.
	Latency sim.Time
	// OutQueueFlits bounds each output port's transmit queue per VC.
	// When an output is full, inbound packets hold their input receive
	// buffers — that is how backpressure (and congestion trees, §3 D#3)
	// propagate upstream.
	OutQueueFlits int
	// Adaptive selects the least-loaded output among equal-cost paths
	// instead of always the first (§2.1 "adaptive routing techniques").
	Adaptive bool
}

// DefaultSwitchConfig matches the <100ns/port class of hardware.
func DefaultSwitchConfig() SwitchConfig {
	return SwitchConfig{Latency: 80 * sim.Nanosecond, OutQueueFlits: 64}
}

// Switch is a PBR-capable fabric switch. Ports are created by the
// topology Builder; the routing table is installed by the fabric
// manager after discovery.
type Switch struct {
	eng  *sim.Engine
	name string
	cfg  SwitchConfig

	ports []*swPort

	// routes maps destination PBR ID to candidate output port indexes
	// (all tied at shortest distance; adaptive routing picks among them).
	routes map[flit.PortID][]int

	// rr rotates tie-breaking among equal-cost adaptive candidates.
	rr int

	// Metrics.
	PktsRouted sim.Counter
	HolStalls  sim.Counter // packets that had to wait for output space
	Transit    *sim.Histogram
}

// swPort is one switch port: the switch side of a link.
type swPort struct {
	sw   *Switch
	idx  int
	port *link.Port
	// waiting holds packets routed to this port but blocked on output
	// queue space. Their input-side release closures are held too, so
	// backpressure propagates to the upstream sender.
	waiting []heldPacket
}

type heldPacket struct {
	pkt     *flit.Packet
	release func()
}

func newSwitch(eng *sim.Engine, name string, cfg SwitchConfig) *Switch {
	if cfg.OutQueueFlits <= 0 {
		cfg.OutQueueFlits = 64
	}
	return &Switch{
		eng:     eng,
		name:    name,
		cfg:     cfg,
		routes:  make(map[flit.PortID][]int),
		Transit: sim.NewHistogram(),
	}
}

// Name reports the switch name.
func (s *Switch) Name() string { return s.name }

// Ports reports the number of attached ports.
func (s *Switch) Ports() int { return len(s.ports) }

// attach registers a link port as switch port index len(ports).
func (s *Switch) attach(p *link.Port) int {
	sp := &swPort{sw: s, idx: len(s.ports), port: p}
	p.SetSink(sp)
	p.DrainHook = sp.tryDrain
	s.ports = append(s.ports, sp)
	return sp.idx
}

// InstallRoute sets the candidate output ports for a destination.
func (s *Switch) InstallRoute(dst flit.PortID, outs []int) {
	for _, o := range outs {
		if o < 0 || o >= len(s.ports) {
			panic(fmt.Sprintf("fabric: switch %s route to %d via invalid port %d", s.name, dst, o))
		}
	}
	s.routes[dst] = outs
}

// Routes reports the number of installed destination entries.
func (s *Switch) Routes() int { return len(s.routes) }

// Arrive implements link.Sink for a switch port.
func (sp *swPort) Arrive(pkt *flit.Packet, release func()) {
	s := sp.sw
	outs, ok := s.routes[pkt.Dst]
	if !ok || len(outs) == 0 {
		panic(fmt.Sprintf("fabric: switch %s has no route to %d (packet %v)", s.name, pkt.Dst, pkt))
	}
	pkt.Hops++
	arrived := s.eng.Now()
	// Crossbar traversal, then output enqueue (or hold under backpressure).
	s.eng.After(s.cfg.Latency, func() {
		out := s.pickOutput(outs, pkt)
		op := s.ports[out]
		if s.spaceFor(op, pkt) {
			s.forward(op, pkt, release, arrived)
			return
		}
		s.HolStalls.Inc()
		op.waiting = append(op.waiting, heldPacket{pkt: pkt, release: release})
	})
}

// pickOutput selects among equal-cost candidates.
func (s *Switch) pickOutput(outs []int, pkt *flit.Packet) int {
	if !s.cfg.Adaptive || len(outs) == 1 {
		return outs[0]
	}
	// Least-loaded wins; ties rotate so equal-cost paths share traffic.
	s.rr++
	best, bestLoad := -1, 1<<30
	for i := range outs {
		o := outs[(s.rr+i)%len(outs)]
		load := s.ports[o].port.TxQueueFlits(pkt.Chan) + len(s.ports[o].waiting)
		if load < bestLoad {
			best, bestLoad = o, load
		}
	}
	return best
}

func (s *Switch) spaceFor(op *swPort, pkt *flit.Packet) bool {
	mode := op.port.Config().Mode
	need := mode.FlitsFor(pkt.Size)
	return op.port.TxQueueFlits(pkt.Chan)+need <= s.cfg.OutQueueFlits
}

func (s *Switch) forward(op *swPort, pkt *flit.Packet, release func(), arrived sim.Time) {
	op.port.Send(pkt)
	release() // input buffer freed only once the packet has output space
	s.PktsRouted.Inc()
	s.Transit.ObserveTime(s.eng.Now() - arrived)
}

// tryDrain moves held packets into the output queue as space frees.
func (sp *swPort) tryDrain() {
	s := sp.sw
	for len(sp.waiting) > 0 {
		h := sp.waiting[0]
		if !s.spaceFor(sp, h.pkt) {
			return
		}
		sp.waiting = sp.waiting[1:]
		s.forward(sp, h.pkt, h.release, s.eng.Now())
	}
}

// QueuedAt reports held (backpressured) packets at an output port.
func (s *Switch) QueuedAt(port int) int { return len(s.ports[port].waiting) }

// Port exposes the link port behind switch port i (credit-allocation
// policies resize its receive buffers; tests inspect its counters).
func (s *Switch) Port(i int) *link.Port { return s.ports[i].port }

// RegisterStats attaches the switch's counters, transit histogram, and
// every switch-side link port (named after its link, so "host0<->fs0.B"
// is addressable fabric-wide) to a stats registry.
func (s *Switch) RegisterStats(st *sim.Stats) {
	st.Register("pkts_routed", &s.PktsRouted)
	st.Register("hol_stalls", &s.HolStalls)
	st.RegisterHistogram("transit_ns", s.Transit)
	for _, sp := range s.ports {
		sp := sp
		c := st.Child(sp.port.Name())
		sp.port.RegisterStats(c)
		c.Gauge("held_pkts", func() int64 { return int64(len(sp.waiting)) })
	}
}
