// Package fabric implements the switching fabric of the composable
// infrastructure (§2.2): fabric switches with upstream/downstream ports,
// bounded output queues with backpressure, PBR (port-based routing)
// tables filled by a central fabric manager, adaptive multi-path
// routing, and a topology builder that assembles hosts, FAM and FAA
// chassis, and switches into a cluster — the architecture of Figure 1b.
package fabric

//fcclint:hotpath route tables and crossbar state must stay dense (PR 5)

import (
	"fmt"

	"fcc/internal/fault"
	"fcc/internal/flit"
	"fcc/internal/link"
	"fcc/internal/sim"
)

// SwitchConfig controls one fabric switch.
type SwitchConfig struct {
	// Latency is the crossbar traversal time per packet. The FabreX
	// datasheet the paper cites claims <100ns non-blocking per port; the
	// Omega testbed is similar.
	Latency sim.Time
	// OutQueueFlits bounds each output port's transmit queue per VC.
	// When an output is full, inbound packets hold their input receive
	// buffers — that is how backpressure (and congestion trees, §3 D#3)
	// propagate upstream.
	OutQueueFlits int
	// Adaptive selects the least-loaded output among equal-cost paths
	// instead of always the first (§2.1 "adaptive routing techniques").
	Adaptive bool
}

// DefaultSwitchConfig matches the <100ns/port class of hardware.
func DefaultSwitchConfig() SwitchConfig {
	return SwitchConfig{Latency: 80 * sim.Nanosecond, OutQueueFlits: 64}
}

// Switch is a PBR-capable fabric switch. Ports are created by the
// topology Builder; the routing table is installed by the fabric
// manager after discovery.
type Switch struct {
	eng  *sim.Engine
	name string
	cfg  SwitchConfig
	// idx is the switch's creation index in its Builder — the dense key
	// the route engine uses instead of a map[*Switch]int.
	idx int

	ports []*swPort

	// routes is a dense table indexed by destination PBR ID (12-bit, so
	// at most 4096 entries): candidate output port indexes, all tied at
	// shortest distance (adaptive routing picks among them). A nil entry
	// means no route. The table is grown to the highest installed ID and
	// zeroed in place on manager re-fills, so the packet-path lookup is
	// one bounds check and one indexed load — no map hashing.
	routes  [][]int
	nroutes int

	// hopFree pools crossbar-traversal event states so a forwarded
	// packet costs no closure allocation per hop.
	hopFree *xbarHop

	// pending gathers every crossbar traversal that completes at the
	// current instant; a single arbitration event (scheduled 0 ps later,
	// so it runs after the whole same-instant cohort has been collected)
	// resolves them in input-port order. Routing and output-space
	// decisions are therefore a function of the cohort, never of the
	// engine's tie-break order among same-picosecond deliveries — the
	// switch-level analogue of the link port's stall-episode deferral
	// (see DESIGN.md, "Tie discipline"). Without this, a cross-shard
	// delivery and a local delivery landing on the same picosecond could
	// contend for the last output slot in either order, and serial vs
	// sharded runs would legally — but observably — diverge.
	pending  []*xbarHop
	arbArmed bool

	// rr rotates tie-breaking among equal-cost adaptive candidates.
	rr int

	// down marks a crashed switch: arriving and held packets are dropped
	// (with their input buffers released, so upstream ports don't wedge
	// past the crash) until Recover. downAt feeds time-to-recover
	// accounting in the fabric manager.
	down   bool
	downAt sim.Time

	// dropUnroutable switches no-route handling from panic (a topology
	// bug in a static fabric) to drop-and-count (normal life in a fabric
	// whose manager removes routes to dead endpoints). The manager turns
	// this on for every switch it supervises.
	dropUnroutable bool

	// Metrics.
	PktsRouted  sim.Counter
	HolStalls   sim.Counter // packets that had to wait for output space
	PktsDropped sim.Counter // packets dropped because this switch was down
	NoRoute     sim.Counter // packets dropped for lack of a route (lossy mode)
	Transit     *sim.Histogram
}

// swPort is one switch port: the switch side of a link.
type swPort struct {
	sw   *Switch
	idx  int
	port *link.Port
	// waiting holds packets routed to this port but blocked on output
	// queue space. Their input-side release closures are held too, so
	// backpressure propagates to the upstream sender.
	waiting []heldPacket
}

type heldPacket struct {
	pkt     *flit.Packet
	release func()
}

// initSwitch fills a (possibly arena-backed) Switch in place, so the
// Builder can allocate switches in one slab instead of one heap object
// per switch.
func initSwitch(s *Switch, eng *sim.Engine, name string, cfg SwitchConfig) {
	if cfg.OutQueueFlits <= 0 {
		cfg.OutQueueFlits = 64
	}
	s.eng = eng
	s.name = name
	s.cfg = cfg
	s.Transit = sim.NewHistogram()
}

// Name reports the switch name.
func (s *Switch) Name() string { return s.name }

// Ports reports the number of attached ports.
func (s *Switch) Ports() int { return len(s.ports) }

// attach registers a link port as switch port index len(ports).
func (s *Switch) attach(p *link.Port) int {
	sp := &swPort{sw: s, idx: len(s.ports), port: p}
	p.SetSink(sp)
	p.DrainHook = sp.tryDrain
	s.ports = append(s.ports, sp)
	return sp.idx
}

// InstallRoute sets the candidate output ports for a destination.
func (s *Switch) InstallRoute(dst flit.PortID, outs []int) {
	for _, o := range outs {
		if o < 0 || o >= len(s.ports) {
			panic(fmt.Sprintf("fabric: switch %s route to %d via invalid port %d", s.name, dst, o))
		}
	}
	if outs == nil {
		outs = []int{} // presence marker: installed, but no candidates
	}
	if int(dst) >= len(s.routes) {
		grown := make([][]int, int(dst)+1)
		copy(grown, s.routes)
		s.routes = grown
	}
	if s.routes[dst] == nil {
		s.nroutes++
	}
	s.routes[dst] = outs
}

// ClearRoute removes a single destination entry (the manager severs
// routes to dead endpoints this way without rebuilding the table).
func (s *Switch) ClearRoute(dst flit.PortID) {
	if int(dst) < len(s.routes) && s.routes[dst] != nil {
		s.routes[dst] = nil
		s.nroutes--
	}
}

// reserveRoutes grows the dense table to cover destination IDs up to
// maxID, so route installs never reallocate it mid-fill.
func (s *Switch) reserveRoutes(maxID flit.PortID) {
	if int(maxID) >= len(s.routes) {
		grown := make([][]int, int(maxID)+1)
		copy(grown, s.routes)
		s.routes = grown
	}
}

// ReservePorts presizes the port slice for a switch whose degree is
// known up front (topology generators know the radix).
func (s *Switch) ReservePorts(n int) {
	if cap(s.ports) < n {
		grown := make([]*swPort, len(s.ports), n)
		copy(grown, s.ports)
		s.ports = grown
	}
}

// routeFor looks up the candidate outputs for a destination (nil when
// no route is installed).
func (s *Switch) routeFor(dst flit.PortID) []int {
	if int(dst) < len(s.routes) {
		return s.routes[dst]
	}
	return nil
}

// Routes reports the number of installed destination entries.
func (s *Switch) Routes() int { return s.nroutes }

// xbarHop carries one packet's crossbar-traversal state between Arrive
// and the traversal event, drawn from the switch's free list so the
// per-hop event schedules closure-free.
type xbarHop struct {
	sw      *Switch
	pkt     *flit.Packet
	release func()
	arrived sim.Time
	in      int // input port index: the canonical same-instant sort key
	next    *xbarHop
}

// Arrive implements link.Sink for a switch port.
func (sp *swPort) Arrive(pkt *flit.Packet, release func()) {
	s := sp.sw
	if s.down {
		s.PktsDropped.Inc()
		release()
		return
	}
	pkt.Hops++
	h := s.hopFree
	if h == nil {
		h = &xbarHop{sw: s}
	} else {
		s.hopFree = h.next
	}
	h.pkt, h.release, h.arrived, h.in = pkt, release, s.eng.Now(), sp.idx
	// Crossbar traversal, then output enqueue (or hold under backpressure).
	// The route lookup happens at arbitration so a table the manager
	// re-filled mid-flight steers even packets already inside the switch.
	s.eng.After2(s.cfg.Latency, xbarTraverse, h)
}

// xbarTraverse completes one packet's crossbar traversal: it joins the
// instant's pending cohort and arms the arbitration pass. All routing
// and output-space decisions are deferred to xbarArbitrate so they
// cannot depend on the engine's ordering of same-picosecond traversals.
func xbarTraverse(a any) {
	h := a.(*xbarHop)
	s := h.sw
	if s.down {
		s.PktsDropped.Inc()
		s.recycle(h)()
		return
	}
	s.pending = append(s.pending, h)
	s.armArb()
}

// armArb schedules the per-instant arbitration event once. A 0 ps delay
// keeps the forwarding timestamp identical to the traversal completion;
// the event merely runs after every same-instant traversal (and every
// same-instant drain trigger) has been collected — those were all
// scheduled at strictly earlier instants, so they carry lower sequence
// numbers in serial and sharded runs alike.
func (s *Switch) armArb() {
	if s.arbArmed {
		return
	}
	s.arbArmed = true
	s.eng.After2(0, xbarArbitrate, s)
}

// recycle detaches a hop's packet state and returns its release
// closure, putting the hop back on the free list.
func (s *Switch) recycle(h *xbarHop) func() {
	release := h.release
	h.pkt, h.release = nil, nil
	h.next = s.hopFree
	s.hopFree = h
	return release
}

// xbarArbitrate resolves the instant's forwarding decisions in
// canonical order: packets already held under backpressure drain first
// (output-port order — they are the oldest), then the newly traversed
// cohort in input-port order. One packet per input port can complete
// traversal per instant (links serialize), so the input index is a
// total order on the cohort.
func xbarArbitrate(a any) {
	s := a.(*Switch)
	s.arbArmed = false
	if s.down {
		for _, h := range s.pending {
			s.PktsDropped.Inc()
			s.recycle(h)()
		}
		s.pending = s.pending[:0]
		return
	}
	for _, sp := range s.ports {
		sp.drainWaiting()
	}
	// Insertion sort by input port: the cohort is tiny (bounded by the
	// port count) and almost always length 1.
	for i := 1; i < len(s.pending); i++ {
		for j := i; j > 0 && s.pending[j].in < s.pending[j-1].in; j-- {
			s.pending[j], s.pending[j-1] = s.pending[j-1], s.pending[j]
		}
	}
	for _, h := range s.pending {
		pkt, arrived := h.pkt, h.arrived
		release := s.recycle(h)
		outs := s.routeFor(pkt.Dst)
		if len(outs) == 0 {
			if s.dropUnroutable {
				s.NoRoute.Inc()
				release()
				continue
			}
			panic(fmt.Sprintf("fabric: switch %s has no route to %d (packet %v)", s.name, pkt.Dst, pkt))
		}
		out := s.pickOutput(outs, pkt)
		op := s.ports[out]
		if s.spaceFor(op, pkt) {
			s.forward(op, pkt, release, arrived)
			continue
		}
		s.HolStalls.Inc()
		op.waiting = append(op.waiting, heldPacket{pkt: pkt, release: release})
	}
	s.pending = s.pending[:0]
}

// pickOutput selects among equal-cost candidates.
func (s *Switch) pickOutput(outs []int, pkt *flit.Packet) int {
	if !s.cfg.Adaptive || len(outs) == 1 {
		return outs[0]
	}
	// Least-loaded wins; ties rotate so equal-cost paths share traffic.
	s.rr++
	best, bestLoad := -1, 1<<30
	for i := range outs {
		o := outs[(s.rr+i)%len(outs)]
		load := s.ports[o].port.TxQueueFlits(pkt.Chan) + len(s.ports[o].waiting)
		if load < bestLoad {
			best, bestLoad = o, load
		}
	}
	return best
}

func (s *Switch) spaceFor(op *swPort, pkt *flit.Packet) bool {
	mode := op.port.Config().Mode
	need := mode.FlitsFor(pkt.Size)
	return op.port.TxQueueFlits(pkt.Chan)+need <= s.cfg.OutQueueFlits
}

func (s *Switch) forward(op *swPort, pkt *flit.Packet, release func(), arrived sim.Time) {
	op.port.Send(pkt)
	release() // input buffer freed only once the packet has output space
	s.PktsRouted.Inc()
	s.Transit.ObserveTime(s.eng.Now() - arrived)
}

// Fail crashes the switch: every packet held under backpressure is
// dropped (releasing its input buffer, so upstream senders see their
// credits again rather than wedging forever), and packets arriving or
// mid-crossbar are dropped until Recover. Routes are retained — a
// recovered switch forwards again immediately, and the manager's next
// reroute refreshes any table that went stale during the outage.
func (s *Switch) Fail() {
	if s.down {
		return
	}
	s.down = true
	s.downAt = s.eng.Now()
	for _, sp := range s.ports {
		for _, h := range sp.waiting {
			s.PktsDropped.Inc()
			h.release()
		}
		sp.waiting = nil
	}
	for _, h := range s.pending {
		s.PktsDropped.Inc()
		s.recycle(h)()
	}
	s.pending = s.pending[:0]
}

// Recover restores a crashed switch.
func (s *Switch) Recover() { s.down = false }

// Down reports whether the switch is crashed — the fabric manager's
// heartbeat sweep polls this.
func (s *Switch) Down() bool { return s.down }

// FailedAt reports when the switch last crashed.
func (s *Switch) FailedAt() sim.Time { return s.downAt }

// SetDropUnroutable selects drop-and-count (true) or panic (false) for
// packets with no installed route.
func (s *Switch) SetDropUnroutable(v bool) { s.dropUnroutable = v }

// FaultID implements fault.Injectable: the switch name.
func (s *Switch) FaultID() string { return s.name }

// Supports reports that a switch can crash.
func (s *Switch) Supports(k fault.Kind) bool { return k == fault.SwitchCrash }

// InjectFault implements fault.Injectable.
func (s *Switch) InjectFault(f fault.Fault) error {
	if f.Kind != fault.SwitchCrash {
		return fmt.Errorf("fabric: switch %s does not support %v", s.name, f.Kind)
	}
	s.Fail()
	return nil
}

// HealFault implements fault.Injectable.
func (s *Switch) HealFault(k fault.Kind) error {
	if k != fault.SwitchCrash {
		return fmt.Errorf("fabric: switch %s does not support %v", s.name, k)
	}
	s.Recover()
	return nil
}

// ClearRoutes empties the PBR table ahead of a manager re-fill, keeping
// the dense table's storage.
func (s *Switch) ClearRoutes() {
	clear(s.routes)
	s.nroutes = 0
}

// tryDrain is the link port's DrainHook: output space freed up. The
// actual drain is deferred to the arbitration pass so that held packets
// and same-instant traversals resolve in one canonical order.
func (sp *swPort) tryDrain() {
	s := sp.sw
	if s.down || len(sp.waiting) == 0 {
		return
	}
	s.armArb()
}

// drainWaiting moves held packets into the output queue as space frees.
func (sp *swPort) drainWaiting() {
	s := sp.sw
	for len(sp.waiting) > 0 {
		h := sp.waiting[0]
		if !s.spaceFor(sp, h.pkt) {
			return
		}
		sp.waiting = sp.waiting[1:]
		s.forward(sp, h.pkt, h.release, s.eng.Now())
	}
}

// QueuedAt reports held (backpressured) packets at an output port.
func (s *Switch) QueuedAt(port int) int { return len(s.ports[port].waiting) }

// Port exposes the link port behind switch port i (credit-allocation
// policies resize its receive buffers; tests inspect its counters).
func (s *Switch) Port(i int) *link.Port { return s.ports[i].port }

// RegisterStats attaches the switch's counters, transit histogram, and
// every switch-side link port (named after its link, so "host0<->fs0.B"
// is addressable fabric-wide) to a stats registry.
func (s *Switch) RegisterStats(st *sim.Stats) {
	st.Register("pkts_routed", &s.PktsRouted)
	st.Register("hol_stalls", &s.HolStalls)
	st.Register("pkts_dropped", &s.PktsDropped)
	st.Register("no_route", &s.NoRoute)
	st.Gauge("down", func() int64 {
		if s.down {
			return 1
		}
		return 0
	})
	st.RegisterHistogram("transit_ns", s.Transit)
	for _, sp := range s.ports {
		sp := sp
		c := st.Child(sp.port.Name())
		sp.port.RegisterStats(c)
		c.Gauge("held_pkts", func() int64 { return int64(len(sp.waiting)) })
	}
}
