package fabric

import (
	"testing"

	"fcc/internal/flit"
	"fcc/internal/link"
	"fcc/internal/sim"
	"fcc/internal/txn"
)

// BenchmarkSwitchRouting measures simulator cost per routed request
// (request + response across one switch).
func BenchmarkSwitchRouting(b *testing.B) {
	eng := sim.NewEngine()
	bd := NewBuilder(eng)
	sw := bd.AddSwitch("fs0", DefaultSwitchConfig())
	ha, _ := bd.AttachEndpoint(sw, "h", RoleHost, link.DefaultConfig())
	h := txn.NewEndpoint(eng, ha.ID, ha.Port, 0)
	ha.Port.SetSink(h)
	da, _ := bd.AttachEndpoint(sw, "d", RoleFAM, link.DefaultConfig())
	d := txn.NewEndpoint(eng, da.ID, da.Port, 0)
	da.Port.SetSink(d)
	d.Handler = func(req *flit.Packet, reply func(*flit.Packet)) {
		reply(req.Response(flit.OpMemRdData, 64))
	}
	if err := bd.Discover(); err != nil {
		b.Fatal(err)
	}
	eng.Go("driver", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Request(&flit.Packet{Chan: flit.ChMem, Op: flit.OpMemRd, Dst: da.ID}).MustAwait(p)
		}
	})
	eng.Run()
}

// BenchmarkDiscovery measures fabric-manager route installation on a
// 4-switch, 64-endpoint topology.
func BenchmarkDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		bd := NewBuilder(eng)
		var sws []*Switch
		for s := 0; s < 4; s++ {
			sws = append(sws, bd.AddSwitch("fs", DefaultSwitchConfig()))
			if s > 0 {
				if err := bd.ConnectSwitches(sws[s-1], sws[s], link.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		}
		for e := 0; e < 64; e++ {
			if _, err := bd.AttachEndpoint(sws[e%4], "ep", RoleHost, link.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
		if err := bd.Discover(); err != nil {
			b.Fatal(err)
		}
	}
}
