package fabric

import (
	"sort"
	"testing"

	"fcc/internal/flit"
	"fcc/internal/link"
	"fcc/internal/sim"
	"fcc/internal/txn"
)

// BenchmarkSwitchRouting measures simulator cost per routed request
// (request + response across one switch).
func BenchmarkSwitchRouting(b *testing.B) {
	eng := sim.NewEngine()
	bd := NewBuilder(eng)
	sw := bd.AddSwitch("fs0", DefaultSwitchConfig())
	ha, _ := bd.AttachEndpoint(sw, "h", RoleHost, link.DefaultConfig())
	h := txn.NewEndpoint(eng, ha.ID, ha.Port, 0)
	ha.Port.SetSink(h)
	da, _ := bd.AttachEndpoint(sw, "d", RoleFAM, link.DefaultConfig())
	d := txn.NewEndpoint(eng, da.ID, da.Port, 0)
	da.Port.SetSink(d)
	d.Handler = func(req *flit.Packet, reply func(*flit.Packet)) {
		reply(req.Response(flit.OpMemRdData, 64))
	}
	if err := bd.Discover(); err != nil {
		b.Fatal(err)
	}
	eng.Go("driver", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Request(&flit.Packet{Chan: flit.ChMem, Op: flit.OpMemRd, Dst: da.ID}).MustAwait(p)
		}
	})
	eng.Run()
}

// benchLine4 builds the historical 4-switch/64-endpoint line.
func benchLine4(b *testing.B) *Builder {
	b.Helper()
	bd := NewBuilder(sim.NewEngine())
	var sws []*Switch
	for s := 0; s < 4; s++ {
		sws = append(sws, bd.AddSwitch("fs", DefaultSwitchConfig()))
		if s > 0 {
			if err := bd.ConnectSwitches(sws[s-1], sws[s], link.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	}
	for e := 0; e < 64; e++ {
		if _, err := bd.AttachEndpoint(sws[e%4], "ep", RoleHost, link.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	return bd
}

// benchTopo builds a generated topology with eps endpoints round-robin
// over the edge tier.
func benchTopo(b *testing.B, spec TopoSpec, eps int) *Builder {
	b.Helper()
	bd := NewBuilder(sim.NewEngine())
	nsw, nisl, err := spec.Counts()
	if err != nil {
		b.Fatal(err)
	}
	bd.Reserve(nsw, nisl, eps)
	topo, err := Generate(bd, spec, DefaultSwitchConfig())
	if err != nil {
		b.Fatal(err)
	}
	for e := 0; e < eps; e++ {
		if _, err := bd.AttachEndpoint(topo.Edge[e%len(topo.Edge)], "ep", RoleHost, link.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	return bd
}

// installRoutesPerEndpoint is the pre-overhaul route algorithm — one
// BFS and fresh scratch per *endpoint* — kept verbatim as the baseline
// BenchmarkDiscovery's ≥5× acceptance bar is measured against.
func installRoutesPerEndpoint(b *Builder) {
	idx := make(map[*Switch]int, len(b.switches))
	for i, s := range b.switches {
		idx[s] = i
	}
	type edge struct{ to, port int }
	adj := make([][]edge, len(b.switches))
	for _, l := range b.links {
		ai, bi := idx[l.a], idx[l.b]
		adj[ai] = append(adj[ai], edge{to: bi, port: l.aPort})
		adj[bi] = append(adj[bi], edge{to: ai, port: l.bPort})
	}
	for _, sw := range b.switches {
		sw.ClearRoutes()
	}
	for _, att := range b.attached {
		home := idx[att.Switch]
		dist := make([]int, len(b.switches))
		for i := range dist {
			dist[i] = -1
		}
		dist[home] = 0
		queue := []int{home}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range adj[cur] {
				if dist[e.to] == -1 {
					dist[e.to] = dist[cur] + 1
					queue = append(queue, e.to)
				}
			}
		}
		for si, sw := range b.switches {
			if si == home {
				sw.InstallRoute(att.ID, []int{att.SwitchPort})
				continue
			}
			if dist[si] == -1 {
				continue
			}
			var outs []int
			for _, e := range adj[si] {
				if dist[e.to] == dist[si]-1 {
					outs = append(outs, e.port)
				}
			}
			sort.Ints(outs)
			sw.InstallRoute(att.ID, outs)
		}
	}
}

// fatTree64 is the 64-switch/512-endpoint acceptance-scale fabric.
var fatTree64 = TopoSpec{Kind: TopoFatTree, Tiers: 3, Radix: 8, Pods: 6}

// BenchmarkDiscovery measures full fabric-manager route installation —
// the per-home-switch batched BFS — across topology scales.
func BenchmarkDiscovery(b *testing.B) {
	cases := []struct {
		name  string
		build func(b *testing.B) *Builder
	}{
		{"line-4sw-64ep", benchLine4},
		{"fat-tree-16sw-96ep", func(b *testing.B) *Builder {
			return benchTopo(b, TopoSpec{Kind: TopoFatTree, Tiers: 3, Radix: 4, Pods: 3}, 96)
		}},
		{"fat-tree-64sw-512ep", func(b *testing.B) *Builder {
			return benchTopo(b, fatTree64, 512)
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			bd := tc.build(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bd.InstallRoutesFull(DeadSet{})
			}
		})
	}
}

// BenchmarkDiscoveryPerEndpointBaseline runs the old per-endpoint-BFS
// algorithm on the same 64-switch fat-tree for comparison.
func BenchmarkDiscoveryPerEndpointBaseline(b *testing.B) {
	bd := benchTopo(b, fatTree64, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		installRoutesPerEndpoint(bd)
	}
}

// BenchmarkRouteRepair measures the manager's incremental route-around
// for a single ISL death on the 64-switch fat-tree (the acceptance bar
// is ≥10× over BenchmarkRouteRepairFull). Each iteration repairs the
// death and restores the link outside the timer.
func BenchmarkRouteRepair(b *testing.B) {
	bd := benchTopo(b, fatTree64, 512)
	dead := DeadSet{
		Switches: make([]bool, len(bd.switches)),
		ISLs:     make([]bool, len(bd.links)),
		Atts:     make([]bool, len(bd.attached)),
	}
	bd.InstallRoutesFull(dead)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dead.ISLs[7] = true
		bd.RepairRoutes(dead, nil, []int{7}, nil)
		b.StopTimer()
		dead.ISLs[7] = false
		bd.InstallRoutesFull(dead)
		b.StartTimer()
	}
}

// BenchmarkRouteRepairFull is the same single-ISL death handled by a
// full recompute — what every fault cost before the incremental engine.
func BenchmarkRouteRepairFull(b *testing.B) {
	bd := benchTopo(b, fatTree64, 512)
	dead := DeadSet{
		Switches: make([]bool, len(bd.switches)),
		ISLs:     make([]bool, len(bd.links)),
		Atts:     make([]bool, len(bd.attached)),
	}
	bd.InstallRoutesFull(dead)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dead.ISLs[7] = true
		bd.InstallRoutesFull(dead)
		b.StopTimer()
		dead.ISLs[7] = false
		bd.InstallRoutesFull(dead)
		b.StartTimer()
	}
}
