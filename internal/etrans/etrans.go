// Package etrans implements FCC Design Principle #1 — data movement as
// a managed service — and the UniFabric elastic transaction engine of
// §5(1). A transaction is the generic primitive the paper sketches,
//
//	eTrans(src_addr_list, dst_addr_list, immediate_bit, attributes, ownership)
//
// with the initiator decoupled from the executor: small/urgent
// transfers run inline at the initiator (synchronous), everything else
// is delegated to a migration agent in the destination's memory domain
// and orchestrated under the central arbiter's control-plane policy
// (bandwidth reservation on the dedicated control lane).
package etrans

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fcc/internal/arbiter"
	"fcc/internal/fabric"
	"fcc/internal/flit"
	"fcc/internal/link"
	"fcc/internal/sim"
	"fcc/internal/txn"
)

// Ownership says who observes a transaction's completion (the paper's
// ownership field: "captures how completion is handled").
type Ownership uint8

const (
	// OwnInitiator: the initiator's future resolves when every byte has
	// landed at the destination.
	OwnInitiator Ownership = iota
	// OwnExecutor: the initiator's future resolves as soon as an
	// executor has durably accepted the descriptor; the executor owns
	// completion (fire-and-forget from the initiator's viewpoint).
	OwnExecutor
)

// Segment is one contiguous range on a fabric node.
type Segment struct {
	Port flit.PortID // owning device/host endpoint
	Addr uint64      // address within that node
	Size uint64
}

// Request is one elastic transaction.
type Request struct {
	Src       []Segment
	Dst       []Segment
	Immediate bool // execute inline at the initiator when small
	Ownership Ownership
	// Priority is an attribute hint (reserved for schedulers).
	Priority uint8
}

// TotalBytes sums the source segments.
func (r *Request) TotalBytes() uint64 {
	var n uint64
	for _, s := range r.Src {
		n += s.Size
	}
	return n
}

// Validate checks shape: equal src/dst byte counts and bounded segment
// lists (a descriptor must fit one control packet).
func (r *Request) Validate() error {
	var src, dst uint64
	for _, s := range r.Src {
		src += s.Size
	}
	for _, d := range r.Dst {
		dst += d.Size
	}
	if src != dst {
		return fmt.Errorf("etrans: src bytes %d != dst bytes %d", src, dst)
	}
	if src == 0 {
		return errors.New("etrans: empty transaction")
	}
	if len(r.Src)+len(r.Dst) > maxSegments {
		return fmt.Errorf("etrans: %d segments exceed descriptor capacity %d",
			len(r.Src)+len(r.Dst), maxSegments)
	}
	return nil
}

// maxSegments bounds a descriptor to one 512B control packet:
// 4B header + 18B per segment.
const maxSegments = 28

// encodeDescriptor serializes a request for the wire.
func encodeDescriptor(r *Request) []byte {
	buf := make([]byte, 0, 4+18*(len(r.Src)+len(r.Dst)))
	buf = append(buf, byte(len(r.Src)), byte(len(r.Dst)), byte(r.Ownership), r.Priority)
	seg := func(s Segment) {
		var b [18]byte
		binary.LittleEndian.PutUint16(b[0:2], uint16(s.Port))
		binary.LittleEndian.PutUint64(b[2:10], s.Addr)
		binary.LittleEndian.PutUint64(b[10:18], s.Size)
		buf = append(buf, b[:]...)
	}
	for _, s := range r.Src {
		seg(s)
	}
	for _, d := range r.Dst {
		seg(d)
	}
	return buf
}

// decodeDescriptor parses a wire descriptor.
func decodeDescriptor(data []byte) (*Request, error) {
	if len(data) < 4 {
		return nil, errors.New("etrans: short descriptor")
	}
	ns, nd := int(data[0]), int(data[1])
	r := &Request{Ownership: Ownership(data[2]), Priority: data[3]}
	need := 4 + 18*(ns+nd)
	if len(data) < need {
		return nil, fmt.Errorf("etrans: descriptor truncated: %d < %d", len(data), need)
	}
	off := 4
	rd := func() Segment {
		s := Segment{
			Port: flit.PortID(binary.LittleEndian.Uint16(data[off : off+2])),
			Addr: binary.LittleEndian.Uint64(data[off+2 : off+10]),
			Size: binary.LittleEndian.Uint64(data[off+10 : off+18]),
		}
		off += 18
		return s
	}
	for i := 0; i < ns; i++ {
		r.Src = append(r.Src, rd())
	}
	for i := 0; i < nd; i++ {
		r.Dst = append(r.Dst, rd())
	}
	return r, nil
}

// ErrExecutorFailed reports a transaction whose executor (inline path or
// delegated agent) could not move the data — a source or destination
// device rejected or stopped answering mid-copy. Match with errors.Is;
// the wrapped cause carries the failing segment and underlying error
// (often txn.ErrTimeout or txn.ErrDeviceDown).
var ErrExecutorFailed = errors.New("etrans: executor failed")

// Result reports a completed transaction.
type Result struct {
	Bytes    uint64
	Executor flit.PortID // who moved the data (initiator itself if inline)
}

// Engine is the initiator-side elastic transaction engine.
type Engine struct {
	eng *sim.Engine
	ep  *txn.Endpoint

	agents []flit.PortID
	// affinity maps a destination port to the preferred agent (the one
	// in its memory domain); absent entries fall back to round-robin.
	affinity map[flit.PortID]flit.PortID
	rr       int

	// arb, when set, gates inline transfers with bandwidth reservations
	// (agents carry their own arbiter clients).
	arb *arbiter.Client

	// InlineLimit is the largest transaction Immediate may run inline.
	InlineLimit uint64

	// Metrics.
	Inline    sim.Counter
	Delegated sim.Counter
}

// NewEngine builds an engine for the initiator endpoint ep.
func NewEngine(eng *sim.Engine, ep *txn.Endpoint) *Engine {
	return &Engine{
		eng:         eng,
		ep:          ep,
		affinity:    make(map[flit.PortID]flit.PortID),
		InlineLimit: link.MaxPacketPayload,
	}
}

// AddAgent registers a migration agent; domainOf lists destination ports
// the agent is co-located with (its memory domain).
func (e *Engine) AddAgent(agent flit.PortID, domainOf ...flit.PortID) {
	e.agents = append(e.agents, agent)
	for _, d := range domainOf {
		e.affinity[d] = agent
	}
}

// SetArbiter installs the central arbiter client used for inline
// transfers.
func (e *Engine) SetArbiter(c *arbiter.Client) { e.arb = c }

// Submit runs one elastic transaction and returns its completion future
// (resolution point depends on req.Ownership).
func (e *Engine) Submit(req *Request) *sim.Future[*Result] {
	f := sim.NewFuture[*Result]()
	if err := req.Validate(); err != nil {
		f.Fail(err)
		return f
	}
	if req.Immediate && req.TotalBytes() <= e.InlineLimit {
		e.Inline.Inc()
		e.eng.Go("etrans-inline", func(p *sim.Proc) {
			if err := copySegments(p, e.ep, e.arb, req); err != nil {
				f.Fail(fmt.Errorf("%w: %v", ErrExecutorFailed, err))
				return
			}
			f.Complete(&Result{Bytes: req.TotalBytes(), Executor: e.ep.ID()})
		})
		return f
	}
	if len(e.agents) == 0 {
		f.Fail(errors.New("etrans: no migration agents registered"))
		return f
	}
	e.Delegated.Inc()
	agent := e.pickAgent(req)
	desc := encodeDescriptor(req)
	e.ep.Request(&flit.Packet{
		Chan: flit.ChCtrl, Op: flit.OpETrans, Dst: agent,
		Size: uint32(len(desc)), Data: desc,
	}).OnComplete(func(resp *flit.Packet, err error) {
		if err != nil {
			f.Fail(err)
			return
		}
		if resp.Op != flit.OpETransDone {
			f.Fail(fmt.Errorf("%w: agent %d replied %v", ErrExecutorFailed, agent, resp.Op))
			return
		}
		f.Complete(&Result{Bytes: req.TotalBytes(), Executor: agent})
	})
	return f
}

// SubmitP is the blocking form of Submit.
func (e *Engine) SubmitP(p *sim.Proc, req *Request) *Result {
	return e.Submit(req).MustAwait(p)
}

// pickAgent prefers the destination's domain agent, else round-robin.
func (e *Engine) pickAgent(req *Request) flit.PortID {
	if len(req.Dst) > 0 {
		if a, ok := e.affinity[req.Dst[0].Port]; ok {
			return a
		}
	}
	a := e.agents[e.rr%len(e.agents)]
	e.rr++
	return a
}

// Agent is a migration agent: a small executor endpoint placed in a
// memory domain (e.g. on a FAM chassis backplane) that executes
// delegated transactions so initiator cores never stall on bulk copies.
type Agent struct {
	eng *sim.Engine
	ep  *txn.Endpoint
	arb *arbiter.Client

	Executed   sim.Counter
	BytesMoved sim.Counter
	Failed     sim.Counter
}

// NewAgent attaches a migration agent at att.
func NewAgent(eng *sim.Engine, att *fabric.Attachment) *Agent {
	a := &Agent{eng: eng}
	a.ep = txn.NewEndpoint(eng, att.ID, att.Port, 0)
	a.ep.Handler = a.handle
	att.Port.SetSink(a.ep)
	return a
}

// ID reports the agent's fabric port.
func (a *Agent) ID() flit.PortID { return a.ep.ID() }

// SetArbiter makes the agent reserve destination bandwidth per chunk.
func (a *Agent) SetArbiter(c *arbiter.Client) { a.arb = c }

func (a *Agent) handle(req *flit.Packet, reply func(*flit.Packet)) {
	if req.Op != flit.OpETrans {
		panic("etrans: agent got " + req.Op.String())
	}
	r, err := decodeDescriptor(req.Data)
	if err != nil {
		panic("etrans: bad descriptor: " + err.Error())
	}
	run := func(done func(err error)) {
		a.eng.Go("etrans-agent", func(p *sim.Proc) {
			if err := copySegments(p, a.ep, a.arb, r); err != nil {
				a.Failed.Inc()
				done(err)
				return
			}
			a.Executed.Inc()
			a.BytesMoved.Add(int64(r.TotalBytes()))
			done(nil)
		})
	}
	switch r.Ownership {
	case OwnExecutor:
		// Accept now; the initiator is released immediately. The executor
		// owns completion, so a copy failure is the agent's to count —
		// the initiator asked not to hear about it.
		reply(req.Response(flit.OpETransDone, 0))
		run(func(error) {})
	default:
		run(func(err error) {
			if err != nil {
				reply(req.Response(flit.OpMemErr, 0))
				return
			}
			reply(req.Response(flit.OpETransDone, 0))
		})
	}
}

// copySegments streams src segments into dst segments in max-payload
// chunks through ep, carrying real bytes. When arb is set, each chunk's
// destination bandwidth is reserved first. A chunk that times out (dead
// path) or is rejected (OpMemErr from a fenced or partitioned device)
// aborts the copy with an error naming the failing segment.
func copySegments(p *sim.Proc, ep *txn.Endpoint, arb *arbiter.Client, r *Request) error {
	si, di := 0, 0
	var sOff, dOff uint64
	for si < len(r.Src) {
		s, d := r.Src[si], r.Dst[di]
		chunk := uint64(link.MaxPacketPayload)
		if rem := s.Size - sOff; rem < chunk {
			chunk = rem
		}
		if rem := d.Size - dOff; rem < chunk {
			chunk = rem
		}
		// Read the chunk from the source node.
		rdResp, err := ep.Request(&flit.Packet{Chan: flit.ChIO, Op: flit.OpIORd,
			Dst: s.Port, Addr: s.Addr + sOff, ReqLen: uint32(chunk)}).Await(p)
		if err != nil {
			return fmt.Errorf("read %d@%#x: %w", s.Port, s.Addr+sOff, err)
		}
		if rdResp.Op != flit.OpIOData {
			return fmt.Errorf("read %d@%#x: device replied %v", s.Port, s.Addr+sOff, rdResp.Op)
		}
		if arb != nil {
			arb.ReserveP(p, d.Port, chunk)
		}
		wrResp, err := ep.Request(&flit.Packet{Chan: flit.ChIO, Op: flit.OpIOWr,
			Dst: d.Port, Addr: d.Addr + dOff, Size: uint32(chunk),
			Data: rdResp.Data}).Await(p)
		if arb != nil {
			arb.ReclaimP(p, d.Port, chunk)
		}
		if err != nil {
			return fmt.Errorf("write %d@%#x: %w", d.Port, d.Addr+dOff, err)
		}
		if wrResp.Op != flit.OpIOAck {
			return fmt.Errorf("write %d@%#x: device replied %v", d.Port, d.Addr+dOff, wrResp.Op)
		}
		sOff += chunk
		dOff += chunk
		if sOff == s.Size {
			si++
			sOff = 0
		}
		if dOff == d.Size {
			di++
			dOff = 0
		}
	}
	return nil
}

// Endpoint exposes the agent's fabric endpoint (e.g. to attach an
// arbiter client).
func (a *Agent) Endpoint() *txn.Endpoint { return a.ep }

// RegisterStats attaches the engine's placement counters to a registry.
func (e *Engine) RegisterStats(s *sim.Stats) {
	s.Register("inline", &e.Inline)
	s.Register("delegated", &e.Delegated)
}

// RegisterStats attaches the agent's execution counters and endpoint.
func (a *Agent) RegisterStats(s *sim.Stats) {
	s.Register("executed", &a.Executed)
	s.Register("bytes_moved", &a.BytesMoved)
	s.Register("failed", &a.Failed)
	a.ep.RegisterStats(s.Child("ep"))
}
