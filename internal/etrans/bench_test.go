package etrans

import (
	"testing"

	"fcc/internal/fabric"
	"fcc/internal/link"
	"fcc/internal/mem"
	"fcc/internal/sim"
	"fcc/internal/txn"
)

// BenchmarkDelegated4K measures one delegated 4KB elastic transaction.
func BenchmarkDelegated4K(b *testing.B) {
	eng := sim.NewEngine()
	bd := fabric.NewBuilder(eng)
	sw := bd.AddSwitch("fs0", fabric.DefaultSwitchConfig())
	att := func(name string, role fabric.Role) *fabric.Attachment {
		a, err := bd.AttachEndpoint(sw, name, role, link.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		return a
	}
	ha := att("init", fabric.RoleHost)
	init := txn.NewEndpoint(eng, ha.ID, ha.Port, 0)
	ha.Port.SetSink(init)
	famA := mem.NewFAM(eng, att("famA", fabric.RoleFAM), mem.DefaultFAMConfig(1<<24))
	famB := mem.NewFAM(eng, att("famB", fabric.RoleFAM), mem.DefaultFAMConfig(1<<24))
	agent := NewAgent(eng, att("agent", fabric.RoleFAA))
	if err := bd.Discover(); err != nil {
		b.Fatal(err)
	}
	e := NewEngine(eng, init)
	e.AddAgent(agent.ID(), famB.ID())
	b.SetBytes(4096)
	eng.Go("driver", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.SubmitP(p, &Request{
				Src: []Segment{{Port: famA.ID(), Addr: 0, Size: 4096}},
				Dst: []Segment{{Port: famB.ID(), Addr: 0, Size: 4096}},
			})
		}
	})
	eng.Run()
}
