package etrans

import (
	"bytes"
	"testing"
	"testing/quick"

	"fcc/internal/fabric"
	"fcc/internal/flit"
	"fcc/internal/link"
	"fcc/internal/mem"
	"fcc/internal/sim"
	"fcc/internal/txn"
)

// rig: initiator host endpoint, two FAMs, one agent per FAM.
type rig struct {
	eng    *sim.Engine
	init   *txn.Endpoint
	famA   *mem.FAM
	famB   *mem.FAM
	agentA *Agent
	agentB *Agent
	engine *Engine
}

func buildRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	b := fabric.NewBuilder(eng)
	sw := b.AddSwitch("fs0", fabric.DefaultSwitchConfig())
	att := func(name string, role fabric.Role) *fabric.Attachment {
		a, err := b.AttachEndpoint(sw, name, role, link.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	ha := att("init", fabric.RoleHost)
	init := txn.NewEndpoint(eng, ha.ID, ha.Port, 0)
	ha.Port.SetSink(init)
	famA := mem.NewFAM(eng, att("famA", fabric.RoleFAM), mem.DefaultFAMConfig(1<<24))
	famB := mem.NewFAM(eng, att("famB", fabric.RoleFAM), mem.DefaultFAMConfig(1<<24))
	agentA := NewAgent(eng, att("agentA", fabric.RoleFAA))
	agentB := NewAgent(eng, att("agentB", fabric.RoleFAA))
	if err := b.Discover(); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(eng, init)
	e.AddAgent(agentA.ID(), famA.ID())
	e.AddAgent(agentB.ID(), famB.ID())
	return &rig{eng: eng, init: init, famA: famA, famB: famB,
		agentA: agentA, agentB: agentB, engine: e}
}

func fill(f *mem.FAM, addr uint64, n int, seed byte) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)*7 + seed
	}
	f.DRAM().Store().Write(addr, data)
	return data
}

func TestDelegatedCopyMovesBytes(t *testing.T) {
	r := buildRig(t)
	want := fill(r.famA, 0x1000, 4096, 1)
	var res *Result
	r.eng.Go("driver", func(p *sim.Proc) {
		res = r.engine.SubmitP(p, &Request{
			Src: []Segment{{Port: r.famA.ID(), Addr: 0x1000, Size: 4096}},
			Dst: []Segment{{Port: r.famB.ID(), Addr: 0x2000, Size: 4096}},
		})
	})
	r.eng.Run()
	if res == nil || res.Bytes != 4096 {
		t.Fatalf("result = %+v", res)
	}
	got := make([]byte, 4096)
	r.famB.DRAM().Store().Read(0x2000, got)
	if !bytes.Equal(got, want) {
		t.Fatal("bytes corrupted in flight")
	}
	if res.Executor != r.agentB.ID() {
		t.Fatalf("executor = %d, want domain agent of famB (%d)", res.Executor, r.agentB.ID())
	}
}

func TestScatterGather(t *testing.T) {
	r := buildRig(t)
	a := fill(r.famA, 0, 600, 3)
	b := fill(r.famA, 0x5000, 424, 9)
	r.eng.Go("driver", func(p *sim.Proc) {
		r.engine.SubmitP(p, &Request{
			Src: []Segment{
				{Port: r.famA.ID(), Addr: 0, Size: 600},
				{Port: r.famA.ID(), Addr: 0x5000, Size: 424},
			},
			Dst: []Segment{{Port: r.famB.ID(), Addr: 0x100, Size: 1024}},
		})
	})
	r.eng.Run()
	got := make([]byte, 1024)
	r.famB.DRAM().Store().Read(0x100, got)
	want := append(append([]byte(nil), a...), b...)
	if !bytes.Equal(got, want) {
		t.Fatal("scatter-gather reassembly wrong")
	}
}

func TestInlineImmediateSmall(t *testing.T) {
	r := buildRig(t)
	fill(r.famA, 0, 256, 5)
	var res *Result
	r.eng.Go("driver", func(p *sim.Proc) {
		res = r.engine.SubmitP(p, &Request{
			Src:       []Segment{{Port: r.famA.ID(), Addr: 0, Size: 256}},
			Dst:       []Segment{{Port: r.famB.ID(), Addr: 0, Size: 256}},
			Immediate: true,
		})
	})
	r.eng.Run()
	if res.Executor != r.init.ID() {
		t.Fatalf("executor = %d, want initiator (inline)", res.Executor)
	}
	if r.engine.Inline.Value() != 1 || r.engine.Delegated.Value() != 0 {
		t.Fatalf("inline=%d delegated=%d", r.engine.Inline.Value(), r.engine.Delegated.Value())
	}
}

func TestImmediateLargeStillDelegates(t *testing.T) {
	r := buildRig(t)
	fill(r.famA, 0, 8192, 5)
	r.eng.Go("driver", func(p *sim.Proc) {
		res := r.engine.SubmitP(p, &Request{
			Src:       []Segment{{Port: r.famA.ID(), Addr: 0, Size: 8192}},
			Dst:       []Segment{{Port: r.famB.ID(), Addr: 0, Size: 8192}},
			Immediate: true, // above InlineLimit -> delegated anyway
		})
		if res.Executor == r.init.ID() {
			t.Error("large immediate ran inline")
		}
	})
	r.eng.Run()
}

func TestOwnershipExecutorReturnsEarly(t *testing.T) {
	r := buildRig(t)
	fill(r.famA, 0, 16384, 2)
	req := func(own Ownership) sim.Time {
		var done sim.Time
		r.eng.Go("driver", func(p *sim.Proc) {
			start := p.Now()
			r.engine.SubmitP(p, &Request{
				Src:       []Segment{{Port: r.famA.ID(), Addr: 0, Size: 16384}},
				Dst:       []Segment{{Port: r.famB.ID(), Addr: 0x8000, Size: 16384}},
				Ownership: own,
			})
			done = p.Now() - start
		})
		r.eng.Run()
		return done
	}
	full := req(OwnInitiator)
	early := req(OwnExecutor)
	if early >= full/2 {
		t.Fatalf("OwnExecutor returned in %v, OwnInitiator %v — expected much earlier", early, full)
	}
	// And the data still arrives.
	got := make([]byte, 16384)
	r.famB.DRAM().Store().Read(0x8000, got)
	want := make([]byte, 16384)
	r.famA.DRAM().Store().Read(0, want)
	if !bytes.Equal(got, want) {
		t.Fatal("fire-and-forget transfer lost data")
	}
}

func TestDelegationFreesInitiator(t *testing.T) {
	// P#1's point: the initiator should not stall for the copy. Compare
	// initiator-busy time: inline (initiator does every chunk) vs
	// delegated with OwnInitiator (initiator waits but could overlap).
	r := buildRig(t)
	fill(r.famA, 0, 65536, 7)
	segsSrc := []Segment{{Port: r.famA.ID(), Addr: 0, Size: 65536}}
	segsDst := []Segment{{Port: r.famB.ID(), Addr: 0, Size: 65536}}
	var overlapWork int
	r.eng.Go("driver", func(p *sim.Proc) {
		f := r.engine.Submit(&Request{Src: segsSrc, Dst: segsDst})
		// While the agent copies, the initiator does other work.
		for !f.Done() {
			p.Sleep(500 * sim.Nanosecond)
			overlapWork++
		}
	})
	r.eng.Run()
	if overlapWork < 10 {
		t.Fatalf("initiator overlapped only %d work units during a 64KB delegated copy", overlapWork)
	}
}

func TestValidateRejectsBadRequests(t *testing.T) {
	r := buildRig(t)
	bad := []*Request{
		{Src: []Segment{{Port: 1, Size: 100}}, Dst: []Segment{{Port: 2, Size: 99}}},
		{},
	}
	for i, req := range bad {
		f := r.engine.Submit(req)
		if !f.Done() || f.Err() == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
	// Oversized segment list.
	var segs []Segment
	for i := 0; i < 30; i++ {
		segs = append(segs, Segment{Port: 1, Addr: uint64(i * 64), Size: 64})
	}
	f := r.engine.Submit(&Request{Src: segs,
		Dst: []Segment{{Port: 2, Size: 30 * 64}}})
	if f.Err() == nil {
		t.Error("oversized descriptor accepted")
	}
}

func TestDescriptorRoundTripProperty(t *testing.T) {
	prop := func(srcPort, dstPort uint16, addr uint64, size uint32, own bool, prio uint8) bool {
		if size == 0 {
			size = 1
		}
		o := OwnInitiator
		if own {
			o = OwnExecutor
		}
		r := &Request{
			Src:       []Segment{{Port: flit.PortID(srcPort & 0xFFF), Addr: addr, Size: uint64(size)}},
			Dst:       []Segment{{Port: flit.PortID(dstPort & 0xFFF), Addr: addr ^ 0xABC, Size: uint64(size)}},
			Ownership: o,
			Priority:  prio,
		}
		q, err := decodeDescriptor(encodeDescriptor(r))
		if err != nil {
			return false
		}
		return q.Ownership == r.Ownership && q.Priority == r.Priority &&
			len(q.Src) == 1 && len(q.Dst) == 1 &&
			q.Src[0] == r.Src[0] && q.Dst[0] == r.Dst[0]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDescriptorRejectsTruncation(t *testing.T) {
	r := &Request{
		Src: []Segment{{Port: 1, Size: 64}},
		Dst: []Segment{{Port: 2, Size: 64}},
	}
	enc := encodeDescriptor(r)
	if _, err := decodeDescriptor(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated descriptor accepted")
	}
	if _, err := decodeDescriptor(nil); err == nil {
		t.Fatal("nil descriptor accepted")
	}
}

func TestRoundRobinWithoutAffinity(t *testing.T) {
	r := buildRig(t)
	// A destination with no registered domain agent round-robins.
	e := NewEngine(r.eng, r.init)
	e.AddAgent(r.agentA.ID())
	e.AddAgent(r.agentB.ID())
	fill(r.famA, 0, 2048, 1)
	var execs []flit.PortID
	r.eng.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			res := e.SubmitP(p, &Request{
				Src: []Segment{{Port: r.famA.ID(), Addr: 0, Size: 2048}},
				Dst: []Segment{{Port: r.famB.ID(), Addr: uint64(i) * 4096, Size: 2048}},
			})
			execs = append(execs, res.Executor)
		}
	})
	r.eng.Run()
	if execs[0] == execs[1] || execs[0] != execs[2] {
		t.Fatalf("executors = %v, want alternating", execs)
	}
}
