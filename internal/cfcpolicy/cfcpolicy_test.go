package cfcpolicy

import (
	"math"
	"testing"

	"fcc/internal/fabric"
	"fcc/internal/flit"
	"fcc/internal/link"
	"fcc/internal/sim"
	"fcc/internal/txn"
)

// contendRig: two hosts — one with a deep request window (the hog) and
// one with a shallow window — send through one switch, each to its own
// fast device. The switch's credit-return path is slow (an FPGA-class
// switch), so each flow's throughput is bound by its RX-buffer credit
// allocation — exactly the regime where the allocation policy decides
// who gets bandwidth.
type contendRig struct {
	eng    *sim.Engine
	sw     *fabric.Switch
	heavy  *txn.Endpoint
	light  *txn.Endpoint
	hDev   *txn.Endpoint
	lDev   *txn.Endpoint
	hPort  int
	lPort  int
	allocr *Allocator
}

func buildRig(t *testing.T, scheme Scheme) *contendRig {
	t.Helper()
	eng := sim.NewEngine()
	b := fabric.NewBuilder(eng)
	sw := b.AddSwitch("fs0", fabric.DefaultSwitchConfig())
	lcfg := link.DefaultConfig()
	lcfg.CreditReturnDelay = 200 * sim.Nanosecond
	mk := func(name string, role fabric.Role) (*txn.Endpoint, int) {
		att, err := b.AttachEndpoint(sw, name, role, lcfg)
		if err != nil {
			t.Fatal(err)
		}
		ep := txn.NewEndpoint(eng, att.ID, att.Port, 0)
		att.Port.SetSink(ep)
		return ep, att.SwitchPort
	}
	heavy, hp := mk("heavy", fabric.RoleHost)
	light, lp := mk("light", fabric.RoleHost)
	echo := func(ep *txn.Endpoint) {
		ep.Handler = func(req *flit.Packet, reply func(*flit.Packet)) {
			reply(req.Response(flit.OpIOAck, 0))
		}
	}
	hDev, _ := mk("famH", fabric.RoleFAM)
	lDev, _ := mk("famL", fabric.RoleFAM)
	echo(hDev)
	echo(lDev)
	if err := b.Discover(); err != nil {
		t.Fatal(err)
	}
	al, err := NewAllocator(eng, sw, []int{hp, lp}, AllocatorConfig{
		Scheme:     scheme,
		VC:         flit.ChIO,
		TotalFlits: 64,
		Epoch:      sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	al.Start()
	return &contendRig{eng: eng, sw: sw, heavy: heavy, light: light,
		hDev: hDev, lDev: lDev, hPort: hp, lPort: lp, allocr: al}
}

// run drives both flows with closed-loop windows for 400us and returns
// each flow's goodput (ops completed in the measurement window).
func (r *contendRig) run() (heavyOps, lightOps float64) {
	var hDone, lDone int
	drive := func(ep *txn.Endpoint, dst *txn.Endpoint, window int, count *int) {
		var pump func()
		inflight := 0
		pump = func() {
			for inflight < window {
				inflight++
				ep.Request(&flit.Packet{Chan: flit.ChIO, Op: flit.OpIOWr,
					Dst: dst.ID(), Size: 512}).OnComplete(func(*flit.Packet, error) {
					inflight--
					*count++
					pump()
				})
			}
		}
		r.eng.After(0, pump)
	}
	// Heavy saturates its buffer allocation (32 packets windowed);
	// light wants just two packets in flight — under ramp-up its
	// allocation collapses to one packet's worth and halves its rate.
	drive(r.heavy, r.hDev, 32, &hDone)
	drive(r.light, r.lDev, 2, &lDone)
	// Measure after a 100us warmup so allocations have converged.
	var h0, l0 int
	r.eng.At(100*sim.Microsecond, func() { h0, l0 = hDone, lDone })
	r.eng.RunUntil(400 * sim.Microsecond)
	return float64(hDone - h0), float64(lDone - l0)
}

func TestRampUpStarvesLightFlow(t *testing.T) {
	rh, rl := buildRig(t, RampUp).run()
	ah, al := buildRig(t, Adaptive).run()
	rampFair := JainFairness([]float64{rh, rl})
	adptFair := JainFairness([]float64{ah, al})
	if adptFair < rampFair*1.05 {
		t.Fatalf("fairness: ramp-up %.3f (h=%v l=%v) vs adaptive %.3f (h=%v l=%v) — expected adaptive clearly fairer",
			rampFair, rh, rl, adptFair, ah, al)
	}
	if al < rl*1.2 {
		t.Fatalf("light goodput: adaptive %v vs ramp-up %v — expected ≥1.2x recovery", al, rl)
	}
}

func TestAllocatorShiftsCreditsToHog(t *testing.T) {
	r := buildRig(t, RampUp)
	var mid []int
	r.eng.At(100*sim.Microsecond, func() { mid = r.allocr.Allocation() })
	r.run()
	if len(mid) != 2 || mid[0] <= mid[1] {
		t.Fatalf("ramp-up allocation at 100us heavy=%v, want heavy > light", mid)
	}
	if r.allocr.Reallocations.Value() == 0 {
		t.Fatal("allocator never reallocated")
	}
}

func TestAdaptiveSplitsEvenlyWhenBothActive(t *testing.T) {
	r := buildRig(t, Adaptive)
	var mid []int
	r.eng.At(100*sim.Microsecond, func() { mid = r.allocr.Allocation() })
	r.run()
	if len(mid) != 2 || mid[0] != mid[1] {
		t.Fatalf("adaptive allocation at 100us = %v, want equal shares", mid)
	}
}

func TestAdaptiveReclaimsFromIdlePort(t *testing.T) {
	r := buildRig(t, Adaptive)
	// Only the heavy flow runs; the light port is idle and must fall to
	// the floor while heavy takes the rest.
	var pump func()
	inflight, done := 0, 0
	pump = func() {
		for inflight < 16 {
			inflight++
			r.heavy.Request(&flit.Packet{Chan: flit.ChIO, Op: flit.OpIOWr,
				Dst: r.hDev.ID(), Size: 512}).OnComplete(func(*flit.Packet, error) {
				inflight--
				done++
				pump()
			})
		}
	}
	r.eng.After(0, pump)
	var mid []int
	r.eng.At(50*sim.Microsecond, func() { mid = r.allocr.Allocation() })
	r.eng.RunUntil(60 * sim.Microsecond)
	minPkt := flit.Mode68.FlitsFor(link.MaxPacketPayload)
	if len(mid) != 2 || mid[1] != minPkt {
		t.Fatalf("idle port allocation = %v, want floor %d", mid, minPkt)
	}
	if mid[0] != 64-minPkt {
		t.Fatalf("active port allocation = %v, want %d", mid, 64-minPkt)
	}
}

func TestAdaptiveKeepsFloorAndBudget(t *testing.T) {
	r := buildRig(t, Adaptive)
	r.run()
	alloc := r.allocr.Allocation()
	minPkt := flit.Mode68.FlitsFor(link.MaxPacketPayload)
	total := 0
	for i, a := range alloc {
		if a < minPkt {
			t.Fatalf("port %d allocation %d below floor %d", i, a, minPkt)
		}
		total += a
	}
	if total > 64 {
		t.Fatalf("allocations %v exceed the 64-flit budget", alloc)
	}
}

func TestStaticNeverReallocates(t *testing.T) {
	r := buildRig(t, Static)
	r.run()
	if r.allocr.Reallocations.Value() != 0 {
		t.Fatal("static scheme reallocated")
	}
	alloc := r.allocr.Allocation()
	if alloc[0] != 32 || alloc[1] != 32 {
		t.Fatalf("static allocation %v, want equal 32/32", alloc)
	}
}

func TestAllocatorRejectsBadConfigs(t *testing.T) {
	eng := sim.NewEngine()
	b := fabric.NewBuilder(eng)
	sw := b.AddSwitch("fs0", fabric.DefaultSwitchConfig())
	if _, err := b.AttachEndpoint(sw, "h", fabric.RoleHost, link.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := NewAllocator(eng, sw, nil, AllocatorConfig{TotalFlits: 64}); err == nil {
		t.Fatal("no ports accepted")
	}
	if _, err := NewAllocator(eng, sw, []int{0}, AllocatorConfig{TotalFlits: 4}); err == nil {
		t.Fatal("budget below floor accepted")
	}
	if _, err := NewAllocator(eng, sw, []int{0}, AllocatorConfig{TotalFlits: 64, MinFlits: 2}); err == nil {
		t.Fatal("sub-packet floor accepted")
	}
}

func TestJainFairness(t *testing.T) {
	if f := JainFairness([]float64{1, 1, 1, 1}); math.Abs(f-1) > 1e-9 {
		t.Fatalf("equal flows fairness = %v", f)
	}
	if f := JainFairness([]float64{1, 0, 0, 0}); math.Abs(f-0.25) > 1e-9 {
		t.Fatalf("single-hog fairness = %v, want 0.25", f)
	}
	if f := JainFairness(nil); f != 1 {
		t.Fatalf("empty fairness = %v", f)
	}
	if f := JainFairness([]float64{0, 0}); f != 1 {
		t.Fatalf("all-zero fairness = %v", f)
	}
	mixed := JainFairness([]float64{10, 1})
	if mixed <= 0.5 || mixed >= 1 {
		t.Fatalf("mixed fairness = %v, want in (0.5, 1)", mixed)
	}
}
