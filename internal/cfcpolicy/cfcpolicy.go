// Package cfcpolicy is the credit-based-flow-control study the paper's
// Difference #3 calls for: credit *allocation* policies that divide a
// switch's finite buffering among contending upstream ports, metrics
// for the interference and starvation pathologies, and the fairness
// measures used to compare schemes.
//
//   - Static: equal fixed allocation (the baseline).
//   - RampUp: the de-facto exponential ramp-up on port utilization
//     ("a consistently heavily-used port would take more credits,
//     leaving little room for other contending ports").
//   - Adaptive: receiver-oriented allocation (Kung et al.) — max-min
//     over active ports with a guaranteed per-port floor, so a hot
//     port cannot starve its neighbours.
//
// Scheduling policies (credit-agnostic vs credit-aware) live in the
// link package as link.Scheduler implementations; this package supplies
// the allocation side and the measurement harness glue.
package cfcpolicy

import (
	"fmt"

	"fcc/internal/fabric"
	"fcc/internal/flit"
	"fcc/internal/link"
	"fcc/internal/sim"
)

// Scheme selects a credit-allocation policy.
type Scheme uint8

// The allocation schemes under study.
const (
	Static Scheme = iota
	RampUp
	Adaptive
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Static:
		return "static"
	case RampUp:
		return "ramp-up"
	case Adaptive:
		return "receiver-adaptive"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// AllocatorConfig controls a per-switch, per-VC credit allocator.
type AllocatorConfig struct {
	Scheme Scheme
	// VC is the virtual channel whose buffers are managed.
	VC flit.Channel
	// TotalFlits is the buffer budget shared by all managed ports.
	TotalFlits int
	// Epoch is the reallocation period.
	Epoch sim.Time
	// MinFlits is the per-port floor; it must hold one max-size packet.
	// 0 selects exactly that packet bound.
	MinFlits int
}

// Allocator periodically re-divides TotalFlits of VC receive buffering
// among a set of switch ports according to the configured scheme.
type Allocator struct {
	eng   *sim.Engine
	cfg   AllocatorConfig
	ports []*link.Port
	alloc []int
	last  []int64 // FlitsRx at previous epoch
	ewma  []float64
	stop  bool

	// Reallocations counts epochs that changed at least one allocation.
	Reallocations sim.Counter
}

// NewAllocator manages the given ports of sw (upstream-facing receive
// buffers). Initial allocation is equal shares.
func NewAllocator(eng *sim.Engine, sw *fabric.Switch, portIdx []int, cfg AllocatorConfig) (*Allocator, error) {
	if len(portIdx) == 0 {
		return nil, fmt.Errorf("cfcpolicy: no ports to manage")
	}
	minPkt := flit.Mode68.FlitsFor(link.MaxPacketPayload)
	if cfg.MinFlits == 0 {
		cfg.MinFlits = minPkt
	}
	if cfg.MinFlits < minPkt {
		return nil, fmt.Errorf("cfcpolicy: MinFlits %d below one max packet (%d flits)", cfg.MinFlits, minPkt)
	}
	if cfg.TotalFlits < cfg.MinFlits*len(portIdx) {
		return nil, fmt.Errorf("cfcpolicy: budget %d cannot give %d ports the %d-flit floor",
			cfg.TotalFlits, len(portIdx), cfg.MinFlits)
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 2 * sim.Microsecond
	}
	a := &Allocator{eng: eng, cfg: cfg}
	for _, i := range portIdx {
		a.ports = append(a.ports, sw.Port(i))
	}
	a.alloc = make([]int, len(a.ports))
	a.last = make([]int64, len(a.ports))
	a.ewma = make([]float64, len(a.ports))
	equal := cfg.TotalFlits / len(a.ports)
	for i, p := range a.ports {
		a.alloc[i] = equal
		p.SetRxBuf(cfg.VC, equal)
		a.last[i] = p.FlitsRx.Value()
	}
	return a, nil
}

// Start begins epoch-based reallocation (no-op for Static).
func (a *Allocator) Start() {
	if a.cfg.Scheme == Static {
		return
	}
	var tick func()
	tick = func() {
		if a.stop {
			return
		}
		a.reallocate()
		a.eng.After(a.cfg.Epoch, tick)
	}
	a.eng.After(a.cfg.Epoch, tick)
}

// Stop halts reallocation after the current epoch.
func (a *Allocator) Stop() { a.stop = true }

// Allocation reports the current per-port credit allocation.
func (a *Allocator) Allocation() []int { return append([]int(nil), a.alloc...) }

func (a *Allocator) reallocate() {
	n := len(a.ports)
	demand := make([]float64, n)
	var totalDemand float64
	// Demand is an EWMA of per-epoch received flits: bursty light flows
	// whose epoch deltas intermittently read zero must not be mistaken
	// for idle.
	const alpha = 0.3
	for i, p := range a.ports {
		cur := p.FlitsRx.Value()
		a.ewma[i] = (1-alpha)*a.ewma[i] + alpha*float64(cur-a.last[i])
		a.last[i] = cur
		demand[i] = a.ewma[i]
		totalDemand += demand[i]
	}
	if totalDemand < 0.1 {
		return
	}
	want := make([]int, n)
	switch a.cfg.Scheme {
	case RampUp:
		// Exponential ramp-up on utilization: busy ports double, idle
		// ports halve — no floor beyond the packet bound, which is the
		// pathology: a hog absorbs nearly the whole budget.
		for i := range want {
			util := demand[i] / totalDemand
			switch {
			case util > 0.5:
				want[i] = a.alloc[i] * 2
			case demand[i] < 0.1:
				want[i] = a.alloc[i] / 2
			default:
				want[i] = a.alloc[i]
			}
		}
	case Adaptive:
		// Receiver-oriented max-min (Kung-style): idle ports fall to the
		// floor; every active port gets an equal share of the rest. A
		// hog can never push an active neighbour below its fair share.
		active := 0
		for i := range want {
			if demand[i] >= 0.1 {
				active++
			}
		}
		if active == 0 {
			return
		}
		idle := len(want) - active
		share := (a.cfg.TotalFlits - idle*a.cfg.MinFlits) / active
		for i := range want {
			if demand[i] >= 0.1 {
				want[i] = share
			} else {
				want[i] = a.cfg.MinFlits
			}
		}
	}
	a.apply(want)
}

// apply clamps to the floor, scales into the budget, and pushes changes.
func (a *Allocator) apply(want []int) {
	n := len(a.ports)
	minF := a.cfg.MinFlits
	for i := range want {
		if want[i] < minF {
			want[i] = minF
		}
	}
	// Scale the above-floor surplus to fit the budget.
	surplusBudget := a.cfg.TotalFlits - minF*n
	surplus := 0
	for _, w := range want {
		surplus += w - minF
	}
	if surplus > surplusBudget && surplus > 0 {
		scale := float64(surplusBudget) / float64(surplus)
		for i := range want {
			want[i] = minF + int(float64(want[i]-minF)*scale)
		}
	}
	changed := false
	for i, p := range a.ports {
		if want[i] != a.alloc[i] {
			a.alloc[i] = want[i]
			p.SetRxBuf(a.cfg.VC, want[i])
			changed = true
		}
	}
	if changed {
		a.Reallocations.Inc()
	}
}

// JainFairness computes Jain's fairness index over per-flow goodputs:
// 1.0 is perfectly fair, 1/n is maximally unfair.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
