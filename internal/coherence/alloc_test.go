package coherence

import (
	"testing"

	"fcc/internal/fabric"
	"fcc/internal/host"
	"fcc/internal/link"
	"fcc/internal/mem"
	"fcc/internal/sim"
)

// TestDirectoryReadMissAllocCeiling pins the end-to-end read-miss
// allocation diet: client lineOp, directory dirOp, FAM famOp, DRAM
// dramOp, and the link-layer pools must all recycle, leaving only the
// objects that escape by design (the caller's future and data copy,
// the request/response/grant packets and their payloads crossing two
// decodes, and the home DRAM read buffer that the grant hands off).
// The ceiling of 24 per miss catches a regression back to per-request
// closures (which cost ~75 allocations before the diet).
func TestDirectoryReadMissAllocCeiling(t *testing.T) {
	eng := sim.NewEngine()
	bd := fabric.NewBuilder(eng)
	sw := bd.AddSwitch("fs0", fabric.DefaultSwitchConfig())
	ha, _ := bd.AttachEndpoint(sw, "h", fabric.RoleHost, link.DefaultConfig())
	h := host.New(eng, "h", host.DefaultConfig(), ha)
	fa, _ := bd.AttachEndpoint(sw, "f", fabric.RoleFAM, link.DefaultConfig())
	fam := mem.NewFAM(eng, fa, mem.DefaultFAMConfig(1<<30))
	dir := NewDirectory(eng, fam)
	if err := bd.Discover(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClientConfig()
	cfg.CapacityLines = 8 // force misses and steady eviction traffic
	cl := NewClient(eng, h, dir.ID(), cfg)

	addr := uint64(0)
	next := func() uint64 {
		addr += 64
		return addr % (10000 * 64)
	}

	// Warm every pool on the path, including the eviction/writeback ops
	// the capacity-8 client generates once it fills.
	for round := 0; round < 8; round++ {
		for i := 0; i < 64; i++ {
			cl.Read(next())
		}
		eng.Run()
	}

	n := testing.AllocsPerRun(20, func() {
		for i := 0; i < 16; i++ {
			cl.Read(next())
		}
		eng.Run()
	})
	perOp := n / 16
	t.Logf("read miss: %.2f allocs per miss", perOp)
	if perOp > 24 {
		t.Fatalf("read miss allocates %.2f per miss in steady state, want <= 24", perOp)
	}
}
