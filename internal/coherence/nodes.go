package coherence

import (
	"fcc/internal/host"
	"fcc/internal/sim"
)

// NodeClient is the uniform software-visible interface over the four
// memory-node types, so workloads (and the E6 node-type experiment) can
// run unchanged across them.
type NodeClient interface {
	// Read64P coherently (per the node's own contract) reads 8 bytes.
	Read64P(p *sim.Proc, addr uint64) uint64
	// Write64P writes 8 bytes.
	Write64P(p *sim.Proc, addr uint64, v uint64)
	// Kind names the node type.
	Kind() string
}

// Kind implements NodeClient for the CC-NUMA / COMA directory client.
func (c *Client) Kind() string {
	if c.cfg.CapacityLines >= 1<<16 {
		return "COMA"
	}
	return "CC-NUMA"
}

// CPULessClient accesses a Type 3 expander through the host's own cache
// hierarchy (host-only coherence): the fabric-attached CPU-less NUMA
// node of Difference #2. Correct only while the host owns the region
// exclusively (or software partitions writers).
type CPULessClient struct {
	H    *host.Host
	Base uint64 // host address where the device region is mapped
}

// Kind implements NodeClient.
func (c *CPULessClient) Kind() string { return "CPU-less NUMA" }

// Read64P implements NodeClient via the host's cached path.
func (c *CPULessClient) Read64P(p *sim.Proc, addr uint64) uint64 {
	return c.H.Load64P(p, c.Base+addr)
}

// Write64P implements NodeClient via the host's cached path.
func (c *CPULessClient) Write64P(p *sim.Proc, addr uint64, v uint64) {
	c.H.Store64P(p, c.Base+addr, v)
}

// NCCClient accesses a non-cache-coherent NUMA node. Every access goes
// to the device uncached; Acquire/Release barriers let software build
// its own coherence on top (flush before publishing, invalidate before
// consuming) when it opts into cached mode.
type NCCClient struct {
	H    *host.Host
	Base uint64
	// Cached selects host-cached access with explicit software
	// coherence (barriers required) instead of fully uncached access.
	Cached bool
}

// Kind implements NodeClient.
func (c *NCCClient) Kind() string { return "NCC-NUMA" }

// Read64P implements NodeClient.
func (c *NCCClient) Read64P(p *sim.Proc, addr uint64) uint64 {
	if c.Cached {
		return c.H.Load64P(p, c.Base+addr)
	}
	b := c.H.UncachedRead(c.Base+addr, 8).MustAwait(p)
	v := uint64(0)
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Write64P implements NodeClient.
func (c *NCCClient) Write64P(p *sim.Proc, addr uint64, v uint64) {
	if c.Cached {
		c.H.Store64P(p, c.Base+addr, v)
		return
	}
	b := [8]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56)}
	c.H.UncachedWrite(c.Base+addr, b[:]).MustAwait(p)
}

// Release flushes [addr, addr+n) so other nodes can observe this node's
// writes (the software-coherence publish barrier).
func (c *NCCClient) Release(p *sim.Proc, addr, n uint64) {
	if c.Cached {
		c.H.FlushRangeP(p, c.Base+addr, n)
	}
}

// Acquire invalidates [addr, addr+n) so subsequent reads observe other
// nodes' writes (the software-coherence consume barrier).
func (c *NCCClient) Acquire(addr, n uint64) {
	if c.Cached {
		c.H.InvalidateRange(c.Base+addr, n)
	}
}
