package coherence

import (
	"testing"

	"fcc/internal/fabric"
	"fcc/internal/host"
	"fcc/internal/link"
	"fcc/internal/mem"
	"fcc/internal/sim"
)

// ccRig builds n hosts sharing one directory-fronted FAM.
func ccRig(t *testing.T, n int, ccfg ClientConfig) (*sim.Engine, []*Client, *Directory) {
	t.Helper()
	eng := sim.NewEngine()
	b := fabric.NewBuilder(eng)
	sw := b.AddSwitch("fs0", fabric.DefaultSwitchConfig())
	var hosts []*host.Host
	for i := 0; i < n; i++ {
		att, err := b.AttachEndpoint(sw, "host"+string(rune('0'+i)), fabric.RoleHost, link.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, host.New(eng, att.Name, host.DefaultConfig(), att))
	}
	fa, err := b.AttachEndpoint(sw, "fam0", fabric.RoleFAM, link.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fam := mem.NewFAM(eng, fa, mem.DefaultFAMConfig(1<<28))
	dir := NewDirectory(eng, fam)
	if err := b.Discover(); err != nil {
		t.Fatal(err)
	}
	var clients []*Client
	for _, h := range hosts {
		clients = append(clients, NewClient(eng, h, dir.ID(), ccfg))
	}
	return eng, clients, dir
}

func TestCCReadWriteSingleNode(t *testing.T) {
	eng, cs, _ := ccRig(t, 1, DefaultClientConfig())
	eng.Go("driver", func(p *sim.Proc) {
		cs[0].Write64P(p, 0x100, 42)
		if got := cs[0].Read64P(p, 0x100); got != 42 {
			t.Errorf("read back %d", got)
		}
	})
	eng.Run()
}

func TestCCWritePropagatesAcrossNodes(t *testing.T) {
	eng, cs, _ := ccRig(t, 2, DefaultClientConfig())
	eng.Go("driver", func(p *sim.Proc) {
		cs[0].Write64P(p, 0x200, 7)
		// Node 1 reads: the directory must fetch the dirty line from
		// node 0 (a forward), not stale home memory.
		if got := cs[1].Read64P(p, 0x200); got != 7 {
			t.Errorf("node1 read %d, want 7", got)
		}
		// And node 0's subsequent write must invalidate node 1's copy.
		cs[0].Write64P(p, 0x200, 8)
		if got := cs[1].Read64P(p, 0x200); got != 8 {
			t.Errorf("node1 read %d after second write, want 8", got)
		}
	})
	eng.Run()
}

func TestCCDirtyForwardCounted(t *testing.T) {
	eng, cs, dir := ccRig(t, 2, DefaultClientConfig())
	eng.Go("driver", func(p *sim.Proc) {
		cs[0].Write64P(p, 0x300, 1)
		cs[1].Read64P(p, 0x300)
	})
	eng.Run()
	if dir.Forwards.Value() == 0 {
		t.Fatal("dirty forward not counted")
	}
	if dir.Snoops.Value() == 0 {
		t.Fatal("no snoops issued")
	}
}

func TestCCReadSharingNoSnoops(t *testing.T) {
	// Read-only sharing: after the first read, other readers get shared
	// grants; no invalidations should occur.
	eng, cs, dir := ccRig(t, 3, DefaultClientConfig())
	eng.Go("driver", func(p *sim.Proc) {
		for _, c := range cs {
			c.Read64P(p, 0x400)
		}
		// Second round: all hits, purely local.
		for _, c := range cs {
			if got := c.Read64P(p, 0x400); got != 0 {
				t.Errorf("got %d", got)
			}
		}
	})
	eng.Run()
	// One downgrade snoop when reader 2 hits reader 1's exclusive line;
	// after that the line is Shared and reader 3 needs no snoop.
	if dir.Snoops.Value() > 1 {
		t.Fatalf("snoops = %d, want ≤1 for read sharing", dir.Snoops.Value())
	}
	total := int64(0)
	for _, c := range cs {
		total += c.Hits.Value()
	}
	if total != 3 {
		t.Fatalf("second-round hits = %d, want 3", total)
	}
}

func TestCCExclusiveGrantSilentUpgrade(t *testing.T) {
	// A sole reader gets E and can upgrade to M without a directory
	// round trip.
	eng, cs, dir := ccRig(t, 1, DefaultClientConfig())
	eng.Go("driver", func(p *sim.Proc) {
		cs[0].Read64P(p, 0x500)
		before := dir.WriteMisses.Value()
		cs[0].Write64P(p, 0x500, 9)
		if dir.WriteMisses.Value() != before {
			t.Error("E->M upgrade went to the directory")
		}
	})
	eng.Run()
}

func TestCCPingPongWriteSharing(t *testing.T) {
	// Migratory/write-shared data ping-pongs: every write by the other
	// node must invalidate, so hits stay near zero.
	eng, cs, dir := ccRig(t, 2, DefaultClientConfig())
	eng.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			cs[i%2].Write64P(p, 0x600, uint64(i))
		}
		if got := cs[0].Read64P(p, 0x600); got != 19 {
			t.Errorf("final value %d, want 19", got)
		}
	})
	eng.Run()
	if dir.Snoops.Value() < 18 {
		t.Fatalf("snoops = %d, want ≈19 for ping-pong", dir.Snoops.Value())
	}
}

func TestCCEvictionWritesBackDirtyData(t *testing.T) {
	cfg := DefaultClientConfig()
	cfg.CapacityLines = 4
	eng, cs, _ := ccRig(t, 1, cfg)
	eng.Go("driver", func(p *sim.Proc) {
		cs[0].Write64P(p, 0, 111)
		// Evict line 0 by filling the 4-line cache.
		for i := uint64(1); i <= 4; i++ {
			cs[0].Write64P(p, i*64, i)
		}
		// Re-read: must come back from home with the written value.
		if got := cs[0].Read64P(p, 0); got != 111 {
			t.Errorf("after eviction, read %d, want 111", got)
		}
	})
	eng.Run()
	if cs[0].Evictions.Value() == 0 {
		t.Fatal("no evictions with a 4-line cache")
	}
}

func TestCCHitLatencyVsMissLatency(t *testing.T) {
	eng, cs, _ := ccRig(t, 1, DefaultClientConfig())
	var miss, hit sim.Time
	eng.Go("driver", func(p *sim.Proc) {
		t0 := p.Now()
		cs[0].Read64P(p, 0x700)
		miss = p.Now() - t0
		t0 = p.Now()
		cs[0].Read64P(p, 0x700)
		hit = p.Now() - t0
	})
	eng.Run()
	if hit != 25*sim.Nanosecond {
		t.Fatalf("hit latency %v, want 25ns", hit)
	}
	if miss < 400*sim.Nanosecond {
		t.Fatalf("miss latency %v, implausibly fast for a fabric round trip", miss)
	}
}

func TestCCConcurrentWritersSerialize(t *testing.T) {
	// Two processes increment a shared counter via read+write under
	// ownership. Directory serialization must make increments atomic at
	// line granularity (each RdOwn sees the latest value).
	eng, cs, _ := ccRig(t, 2, DefaultClientConfig())
	done := 0
	for i := 0; i < 2; i++ {
		c := cs[i]
		eng.Go("writer", func(p *sim.Proc) {
			for k := 0; k < 10; k++ {
				v := c.Read64P(p, 0x800)
				c.Write64P(p, 0x800, v+1)
			}
			done++
		})
	}
	eng.Run()
	if done != 2 {
		t.Fatal("writers did not finish")
	}
	// Read-modify-write without a lock can lose updates (that is
	// expected of plain coherence); but the final value must be between
	// 10 and 20 and the protocol must not have wedged or corrupted.
	var final uint64
	eng.Go("reader", func(p *sim.Proc) { final = cs[0].Read64P(p, 0x800) })
	eng.Run()
	if final < 10 || final > 20 {
		t.Fatalf("final counter %d out of [10,20]", final)
	}
}

func TestCOMAAttractionMemoryHitsLocally(t *testing.T) {
	// After first touch, a COMA node's working set lives in its
	// attraction memory: second pass is all local hits even for a
	// working set far beyond a CXL.cache-style coherent cache.
	eng, cs, _ := ccRig(t, 1, COMAClientConfig())
	const lines = 4096 // 256KB, 8x the 512-line coherent cache
	var pass1, pass2 sim.Time
	eng.Go("driver", func(p *sim.Proc) {
		t0 := p.Now()
		for i := uint64(0); i < lines; i++ {
			cs[0].Read64P(p, i*64)
		}
		pass1 = p.Now() - t0
		t0 = p.Now()
		for i := uint64(0); i < lines; i++ {
			cs[0].Read64P(p, i*64)
		}
		pass2 = p.Now() - t0
	})
	eng.Run()
	if cs[0].Kind() != "COMA" {
		t.Fatalf("kind = %s", cs[0].Kind())
	}
	if float64(pass1)/float64(pass2) < 5 {
		t.Fatalf("COMA second pass only %.1fx faster (pass1=%v pass2=%v)",
			float64(pass1)/float64(pass2), pass1, pass2)
	}
}

func TestCCSmallCacheThrashesWhereCOMADoesNot(t *testing.T) {
	run := func(cfg ClientConfig) int64 {
		eng, cs, _ := ccRig(t, 1, cfg)
		eng.Go("driver", func(p *sim.Proc) {
			for pass := 0; pass < 2; pass++ {
				for i := uint64(0); i < 2048; i++ {
					cs[0].Read64P(p, i*64)
				}
			}
		})
		eng.Run()
		return cs[0].Misses.Value()
	}
	ccMisses := run(DefaultClientConfig()) // 512-line cache, 2048-line set
	comaMisses := run(COMAClientConfig())  // everything fits
	if comaMisses != 2048 {
		t.Fatalf("COMA misses = %d, want 2048 (cold only)", comaMisses)
	}
	if ccMisses < 3000 {
		t.Fatalf("CC misses = %d, want ≈4096 (thrash)", ccMisses)
	}
}

// nccRig builds 2 hosts + raw FAM (no directory).
func nccRig(t *testing.T) (*sim.Engine, []*host.Host, *mem.FAM) {
	t.Helper()
	eng := sim.NewEngine()
	b := fabric.NewBuilder(eng)
	sw := b.AddSwitch("fs0", fabric.DefaultSwitchConfig())
	var hosts []*host.Host
	for i := 0; i < 2; i++ {
		att, err := b.AttachEndpoint(sw, "host"+string(rune('0'+i)), fabric.RoleHost, link.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, host.New(eng, att.Name, host.DefaultConfig(), att))
	}
	fa, err := b.AttachEndpoint(sw, "fam0", fabric.RoleFAM, link.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fam := mem.NewFAM(eng, fa, mem.DefaultFAMConfig(1<<28))
	if err := b.Discover(); err != nil {
		t.Fatal(err)
	}
	const base = 1 << 30
	for _, h := range hosts {
		if err := h.MapRemote("fam0", base, 1<<28, fam.ID(), 0); err != nil {
			t.Fatal(err)
		}
	}
	return eng, hosts, fam
}

func TestNCCUncachedAlwaysCoherent(t *testing.T) {
	eng, hosts, _ := nccRig(t)
	a := &NCCClient{H: hosts[0], Base: 1 << 30}
	b := &NCCClient{H: hosts[1], Base: 1 << 30}
	eng.Go("driver", func(p *sim.Proc) {
		a.Write64P(p, 0x100, 5)
		if got := b.Read64P(p, 0x100); got != 5 {
			t.Errorf("uncached NCC read %d, want 5", got)
		}
	})
	eng.Run()
}

func TestNCCCachedRequiresBarriers(t *testing.T) {
	eng, hosts, _ := nccRig(t)
	a := &NCCClient{H: hosts[0], Base: 1 << 30, Cached: true}
	b := &NCCClient{H: hosts[1], Base: 1 << 30, Cached: true}
	eng.Go("driver", func(p *sim.Proc) {
		// B warms a stale copy.
		if got := b.Read64P(p, 0x200); got != 0 {
			t.Errorf("initial read %d", got)
		}
		// A writes and publishes.
		a.Write64P(p, 0x200, 9)
		// WITHOUT barriers, B still sees the stale cached 0 — that is
		// the NCC hazard the paper warns about.
		if got := b.Read64P(p, 0x200); got != 0 {
			t.Errorf("without barriers B saw %d — caches leaked coherence", got)
		}
		// With release+acquire, the write becomes visible.
		a.Release(p, 0x200, 8)
		b.Acquire(0x200, 8)
		if got := b.Read64P(p, 0x200); got != 9 {
			t.Errorf("after barriers B saw %d, want 9", got)
		}
	})
	eng.Run()
}

func TestCPULessClientThroughHostCaches(t *testing.T) {
	eng, hosts, fam := nccRig(t)
	c := &CPULessClient{H: hosts[0], Base: 1 << 30}
	eng.Go("driver", func(p *sim.Proc) {
		c.Write64P(p, 0x300, 77)
		if got := c.Read64P(p, 0x300); got != 77 {
			t.Errorf("read back %d", got)
		}
		// Flush and verify it reached the device.
		hosts[0].FlushRangeP(p, (1<<30)+0x300, 8)
		if got := fam.DRAM().Store().Read64(0x300); got != 77 {
			t.Errorf("device sees %d", got)
		}
	})
	eng.Run()
	if c.Kind() != "CPU-less NUMA" {
		t.Fatalf("kind = %s", c.Kind())
	}
}

func TestDirectoryStateTransitions(t *testing.T) {
	eng, cs, dir := ccRig(t, 2, DefaultClientConfig())
	eng.Go("driver", func(p *sim.Proc) {
		if got := dir.StateOf(0x900); got != "uncached" {
			t.Errorf("initial state %s", got)
		}
		cs[0].Read64P(p, 0x900)
		if got := dir.StateOf(0x900); got != "exclusive" {
			t.Errorf("after sole read: %s", got)
		}
		cs[1].Read64P(p, 0x900)
		if got := dir.StateOf(0x900); got != "shared(2)" {
			t.Errorf("after second read: %s", got)
		}
		cs[0].Write64P(p, 0x900, 1)
		if got := dir.StateOf(0x900); got != "exclusive" {
			t.Errorf("after write: %s", got)
		}
	})
	eng.Run()
}

// Property: with operations issued one at a time (a total order in
// virtual time) across three CC-NUMA clients, every read returns the
// value of the most recent write — per-line sequential consistency of
// the directory protocol, under capacity evictions.
func TestCCRandomOpsSequentialConsistency(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		cfg := DefaultClientConfig()
		cfg.CapacityLines = 16 // force evictions/writebacks mid-stream
		eng, cs, _ := ccRig(t, 3, cfg)
		rng := sim.NewRNG(seed)
		ref := map[uint64]uint64{}
		eng.Go("fuzz", func(p *sim.Proc) {
			for op := 0; op < 1500; op++ {
				c := cs[rng.Intn(len(cs))]
				addr := uint64(rng.Intn(64)) * 64
				if rng.Intn(3) == 0 {
					v := rng.Uint64()
					c.Write64P(p, addr, v)
					ref[addr] = v
				} else {
					got := c.Read64P(p, addr)
					if got != ref[addr] {
						t.Errorf("seed %d op %d: node read(%#x) = %#x, want %#x",
							seed, op, addr, got, ref[addr])
						return
					}
				}
			}
		})
		eng.Run()
	}
}
