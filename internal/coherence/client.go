package coherence

import (
	"fmt"

	"fcc/internal/flit"
	"fcc/internal/host"
	"fcc/internal/sim"
	"fcc/internal/txn"
)

// mesi is the client-side line state.
type mesi uint8

const (
	stI mesi = iota
	stS
	stE
	stM
)

// ClientConfig sizes the per-node coherent store.
type ClientConfig struct {
	// CapacityLines bounds the client's coherent cache / attraction
	// memory, in 64B lines.
	CapacityLines int
	// HitLat is the local hit latency. A small FHA-side coherent cache
	// (CXL.cache style) hits in tens of ns; a COMA attraction memory is
	// DRAM and hits at local-DRAM latency.
	HitLat sim.Time
	// AdapterLat is the processing cost added to each protocol request
	// the client issues.
	AdapterLat sim.Time
	// RetryAttempts bounds protocol-request retries when the host
	// endpoint enforces a timeout (fault experiments). The directory is
	// duplicate-tolerant by construction — an owner re-requesting after
	// a lost grant is re-granted from home, a stale writeback is dropped
	// — so retrying a timed-out protocol request is always safe. Only
	// after the attempts are exhausted (a genuine partition) does the
	// client panic.
	RetryAttempts int
	// RetryBackoff is the first retry delay; it doubles per attempt.
	RetryBackoff sim.Time
}

// DefaultClientConfig is a CXL.cache-style small coherent cache.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		CapacityLines: 512,
		HitLat:        25 * sim.Nanosecond,
		AdapterLat:    50 * sim.Nanosecond,
		RetryAttempts: 4,
		RetryBackoff:  10 * sim.Microsecond,
	}
}

// COMAClientConfig is a cache-only attraction memory: DRAM-sized and
// DRAM-latency, so lines the node touches live locally afterwards.
//
// Simplification vs the DDM design: our home directory retains backing
// capacity for every line, so "last copy" relocation on eviction never
// triggers; the performance-visible property — data migrates and
// replicates to its users, and capacity is node-local DRAM — is
// preserved.
func COMAClientConfig() ClientConfig {
	return ClientConfig{
		CapacityLines: 1 << 18, // 16MB of 64B lines
		HitLat:        sim.FromNanos(98.1),
		AdapterLat:    50 * sim.Nanosecond,
	}
}

type clientLine struct {
	state mesi
	lru   uint64
	data  [64]byte
	next  *clientLine // free list
}

// lineOp kinds: what a queued per-line operation does once it holds the
// line lock.
const (
	opRead uint8 = iota
	opWrite
	opWBDirty // eviction writeback carrying dirty data
	opWBClean // dataless eviction notice for an E line
)

// lineOp carries one client operation (read, write, or eviction
// writeback) through the per-line lock, the optional hit latency, and
// the protocol round trip. The step callbacks are bound once at
// construction and the record recycles through a free list, so the
// steady-state miss path allocates no closures.
type lineOp struct {
	c     *Client
	addr  uint64 // line base
	kind  uint8
	off   uint64 // write offset within the line
	wdata []byte // write payload (caller's slice, held until commit)
	wb    [64]byte
	l     *clientLine
	rf    *sim.Future[[]byte]
	wf    *sim.Future[struct{}]
	req   *flit.Packet
	next  *lineOp

	run     func()
	hitStep func()
	respFn  func(*flit.Packet, error)
}

// Client is one node's participant in the directory protocol: a coherent
// cache (or attraction memory) plus the snoop responder, registered on
// the host's FHA endpoint.
type Client struct {
	eng  *sim.Engine
	h    *host.Host
	home flit.PortID
	cfg  ClientConfig

	lines map[uint64]*clientLine
	// wbPending holds dirty data of lines evicted but whose writeback
	// has not yet been acknowledged; snoops are answered from here so a
	// late writeback can never lose the newest data.
	wbPending map[uint64][64]byte
	tick      uint64
	// pending serializes client ops per line and against snoops.
	pending map[uint64][]func()
	busy    map[uint64]bool

	opFree   *lineOp
	lineFree *clientLine

	// prevInv/prevData continue the host's snoop dispatch chain: the
	// handlers that were registered before this client (clients of other
	// home directories on the same host), nil for the first client.
	prevInv  txn.Handler
	prevData txn.Handler

	// Metrics.
	Hits      sim.Counter
	Misses    sim.Counter
	Upgrades  sim.Counter // S->M requiring a directory round trip
	Evictions sim.Counter
	SnoopsIn  sim.Counter
}

// NewClient registers a coherence client for home on h's endpoint.
func NewClient(eng *sim.Engine, h *host.Host, home flit.PortID, cfg ClientConfig) *Client {
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 4
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 10 * sim.Microsecond
	}
	c := &Client{
		eng: eng, h: h, home: home, cfg: cfg,
		lines:     make(map[uint64]*clientLine),
		wbPending: make(map[uint64][64]byte),
		pending:   make(map[uint64][]func()),
		busy:      make(map[uint64]bool),
	}
	// A host may cache lines from several homes (one Client per FAM
	// expander). Line addresses are device-local and collide across
	// homes, so each client answers only snoops sent by its own home
	// directory and delegates anything else to the previously registered
	// client — a dispatch chain rather than a clobbering overwrite.
	c.prevInv = h.Handler(flit.OpSnpInv)
	c.prevData = h.Handler(flit.OpSnpData)
	h.Handle(flit.OpSnpInv, c.dispatchSnoop)
	h.Handle(flit.OpSnpData, c.dispatchSnoop)
	return c
}

// dispatchSnoop routes a directory snoop to the client whose home sent
// it. Snoops carry the home device's port ID as Src (the directory
// issues them through the FAM's endpoint), which is exactly the home
// this client registered against.
func (c *Client) dispatchSnoop(req *flit.Packet, reply func(*flit.Packet)) {
	if req.Src == c.home {
		c.handleSnoop(req, reply)
		return
	}
	prev := c.prevInv
	if req.Op == flit.OpSnpData {
		prev = c.prevData
	}
	if prev == nil {
		// Sole registered client: answer regardless of home, preserving
		// single-directory behavior for tests that snoop synthetically.
		c.handleSnoop(req, reply)
		return
	}
	prev(req, reply)
}

// Host returns the underlying host.
func (c *Client) Host() *host.Host { return c.h }

func (c *Client) getOp() *lineOp {
	op := c.opFree
	if op == nil {
		op = &lineOp{c: c}
		op.run = func() { op.c.runOp(op) }
		op.hitStep = func() { op.c.finishHit(op) }
		op.respFn = func(resp *flit.Packet, err error) {
			if err != nil {
				panic("coherence: protocol request failed: " + err.Error())
			}
			op.c.granted(op, resp.ReqLen, resp.Data)
		}
	} else {
		c.opFree = op.next
		op.next = nil
	}
	return op
}

func (c *Client) putOp(op *lineOp) {
	op.wdata, op.l, op.rf, op.wf, op.req = nil, nil, nil, nil, nil
	op.next = c.opFree
	c.opFree = op
}

func (c *Client) getLine() *clientLine {
	l := c.lineFree
	if l == nil {
		return &clientLine{}
	}
	c.lineFree = l.next
	l.next = nil
	return l
}

func (c *Client) putLine(l *clientLine) {
	l.next = c.lineFree
	c.lineFree = l
}

// acquireOp serializes per-line work; release runs the next queued op.
func (c *Client) acquireOp(op *lineOp) {
	if c.busy[op.addr] {
		c.pending[op.addr] = append(c.pending[op.addr], op.run)
		return
	}
	op.run()
}

// runOp executes an operation that holds its line lock.
func (c *Client) runOp(op *lineOp) {
	c.busy[op.addr] = true
	switch op.kind {
	case opRead:
		if l, ok := c.lines[op.addr]; ok && l.state != stI {
			c.Hits.Inc()
			c.touch(l)
			op.l = l
			c.eng.After(c.cfg.HitLat, op.hitStep)
			return
		}
		c.Misses.Inc()
		c.protocol(op, flit.OpCacheRd, nil)
	case opWrite:
		if l, ok := c.lines[op.addr]; ok && (l.state == stM || l.state == stE) {
			c.Hits.Inc()
			l.state = stM
			c.touch(l)
			copy(l.data[op.off:], op.wdata)
			c.eng.After(c.cfg.HitLat, op.hitStep)
			return
		}
		if l, ok := c.lines[op.addr]; ok && l.state == stS {
			c.Upgrades.Inc()
		} else {
			c.Misses.Inc()
		}
		c.protocol(op, flit.OpCacheRdOwn, nil)
	case opWBDirty:
		c.protocol(op, flit.OpCacheWB, op.wb[:])
	case opWBClean:
		c.protocol(op, flit.OpCacheWB, nil)
	}
}

// release frees the line lock, recycles the op, and runs the next
// queued operation for the line, if any.
func (c *Client) release(op *lineOp) {
	addr := op.addr
	c.putOp(op)
	c.busy[addr] = false
	if q := c.pending[addr]; len(q) > 0 {
		next := q[0]
		c.pending[addr] = q[1:]
		next()
	} else {
		delete(c.pending, addr)
	}
}

// finishHit completes a read or write that hit locally, after HitLat.
func (c *Client) finishHit(op *lineOp) {
	switch op.kind {
	case opRead:
		data := append([]byte(nil), op.l.data[:]...)
		rf := op.rf
		c.release(op)
		rf.Complete(data)
	case opWrite:
		wf := op.wf
		c.release(op)
		wf.Complete(struct{}{})
	}
}

// Read returns the 64B line at device address addr (line-aligned).
func (c *Client) Read(addr uint64) *sim.Future[[]byte] {
	f := sim.NewFuture[[]byte]()
	op := c.getOp()
	op.kind, op.addr, op.rf = opRead, addr&^63, f
	c.acquireOp(op)
	return f
}

// Write stores data (≤64B) into the line at addr, obtaining ownership
// first if needed.
func (c *Client) Write(addr uint64, data []byte) *sim.Future[struct{}] {
	base := addr &^ 63
	off := addr - base
	if off+uint64(len(data)) > 64 {
		panic("coherence: Write crosses a line")
	}
	f := sim.NewFuture[struct{}]()
	op := c.getOp()
	op.kind, op.addr, op.off, op.wdata, op.wf = opWrite, base, off, data, f
	c.acquireOp(op)
	return f
}

// ReadP / WriteP are the blocking forms.
func (c *Client) ReadP(p *sim.Proc, addr uint64) []byte { return c.Read(addr).MustAwait(p) }

// WriteP blocks until the write commits with ownership.
func (c *Client) WriteP(p *sim.Proc, addr uint64, data []byte) { c.Write(addr, data).MustAwait(p) }

// Read64P reads a uint64 coherently.
func (c *Client) Read64P(p *sim.Proc, addr uint64) uint64 {
	b := c.ReadP(p, addr)
	off := addr & 63
	v := uint64(0)
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[off+uint64(i)])
	}
	return v
}

// Write64P writes a uint64 coherently.
func (c *Client) Write64P(p *sim.Proc, addr uint64, v uint64) {
	b := [8]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56)}
	c.WriteP(p, addr, b[:])
}

// protocol issues one coherent request to the home directory on behalf
// of op; the grant lands in granted via the op's pre-bound respFn.
func (c *Client) protocol(op *lineOp, pop flit.Op, data []byte) {
	req := &flit.Packet{Chan: flit.ChCache, Op: pop, Dst: c.home, Addr: op.addr}
	if data != nil {
		req.Size = uint32(len(data))
		req.Data = append([]byte(nil), data...)
	}
	op.req = req
	c.eng.After2(c.cfg.AdapterLat, clientSendFire, op)
}

func clientSendFire(a any) {
	op := a.(*lineOp)
	req := op.req
	op.req = nil
	c := op.c
	ep := c.h.Endpoint()
	if ep.Timeout > 0 {
		// Bounded retry rides out link-fault windows on hosts whose
		// endpoint enforces a timeout (fault experiments).
		ep.RequestRetry(req, c.cfg.RetryAttempts, c.cfg.RetryBackoff).OnComplete(op.respFn)
		return
	}
	// Unbounded endpoint: a plain request can never time out, so skip
	// the retry wrapper (it clones the packet and allocates a future —
	// measurable on the read-miss hot path).
	ep.Request(req).OnComplete(op.respFn)
}

// granted applies a directory response to the op that requested it.
func (c *Client) granted(op *lineOp, grant uint32, data []byte) {
	switch op.kind {
	case opRead:
		st := stS
		if grant == grantExclusive {
			st = stE
		}
		l := c.install(op.addr, data, st)
		out := append([]byte(nil), l.data[:]...)
		rf := op.rf
		c.release(op)
		rf.Complete(out)
	case opWrite:
		if grant != grantModified {
			panic(fmt.Sprintf("coherence: RdOwn granted %d", grant))
		}
		l := c.install(op.addr, data, stM)
		copy(l.data[op.off:], op.wdata)
		wf := op.wf
		c.release(op)
		wf.Complete(struct{}{})
	case opWBDirty:
		delete(c.wbPending, op.addr)
		c.release(op)
	case opWBClean:
		c.release(op)
	}
}

func (c *Client) touch(l *clientLine) {
	c.tick++
	l.lru = c.tick
}

// install places a line, evicting LRU if at capacity. Evicted M lines
// write back; E lines send a dataless eviction notice; S lines leave
// silently.
func (c *Client) install(addr uint64, data []byte, st mesi) *clientLine {
	if l, ok := c.lines[addr]; ok {
		l.state = st
		copy(l.data[:], data)
		c.touch(l)
		return l
	}
	if len(c.lines) >= c.cfg.CapacityLines {
		c.evictLRU()
	}
	l := c.getLine()
	l.state = st
	copy(l.data[:], data)
	c.lines[addr] = l
	c.touch(l)
	return l
}

func (c *Client) evictLRU() {
	var victim uint64
	var vl *clientLine
	oldest := ^uint64(0)
	for a, l := range c.lines {
		if l.lru < oldest && !c.busy[a] {
			victim, vl, oldest = a, l, l.lru
		}
	}
	if vl == nil {
		return // everything busy; allow temporary overcommit
	}
	c.Evictions.Inc()
	delete(c.lines, victim)
	switch vl.state {
	case stM:
		c.wbPending[victim] = vl.data
		// The per-line lock is held for the writeback's duration, so a
		// re-request of this line waits until the directory has
		// processed the eviction.
		op := c.getOp()
		op.kind, op.addr, op.wb = opWBDirty, victim, vl.data
		c.putLine(vl)
		c.acquireOp(op)
	case stE:
		op := c.getOp()
		op.kind, op.addr = opWBClean, victim
		c.putLine(vl)
		c.acquireOp(op)
	default:
		c.putLine(vl)
	}
}

// handleSnoop answers directory snoops against the local cache.
func (c *Client) handleSnoop(req *flit.Packet, reply func(*flit.Packet)) {
	c.SnoopsIn.Inc()
	addr := req.Addr &^ 63
	l, ok := c.lines[addr]
	respond := func(data []byte) {
		resp := req.Response(flit.OpSnpResp, uint32(len(data)))
		resp.Data = append([]byte(nil), data...)
		c.eng.After(c.cfg.AdapterLat, func() { reply(resp) })
	}
	if !ok || l.state == stI {
		// A line evicted with its writeback still in flight is answered
		// from the writeback buffer (the directory drops the late
		// writeback's stale home update).
		if wb, inFlight := c.wbPending[addr]; inFlight {
			respond(wb[:])
			return
		}
		respond(nil)
		return
	}
	switch req.Op {
	case flit.OpSnpInv:
		dirty := l.state == stM
		data := l.data
		delete(c.lines, addr)
		// A busy line may still be referenced by an in-flight hit (op.l),
		// so only recycle when the per-line lock is free.
		if !c.busy[addr] {
			c.putLine(l)
		}
		if dirty {
			respond(data[:])
			return
		}
		respond(nil)
	case flit.OpSnpData:
		dirty := l.state == stM
		l.state = stS
		if dirty {
			respond(l.data[:])
			return
		}
		respond(nil)
	default:
		panic("coherence: unexpected snoop " + req.Op.String())
	}
}

// LinesCached reports the client's resident line count.
func (c *Client) LinesCached() int { return len(c.lines) }
