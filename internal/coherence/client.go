package coherence

import (
	"fmt"

	"fcc/internal/flit"
	"fcc/internal/host"
	"fcc/internal/sim"
)

// mesi is the client-side line state.
type mesi uint8

const (
	stI mesi = iota
	stS
	stE
	stM
)

// ClientConfig sizes the per-node coherent store.
type ClientConfig struct {
	// CapacityLines bounds the client's coherent cache / attraction
	// memory, in 64B lines.
	CapacityLines int
	// HitLat is the local hit latency. A small FHA-side coherent cache
	// (CXL.cache style) hits in tens of ns; a COMA attraction memory is
	// DRAM and hits at local-DRAM latency.
	HitLat sim.Time
	// AdapterLat is the processing cost added to each protocol request
	// the client issues.
	AdapterLat sim.Time
}

// DefaultClientConfig is a CXL.cache-style small coherent cache.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		CapacityLines: 512,
		HitLat:        25 * sim.Nanosecond,
		AdapterLat:    50 * sim.Nanosecond,
	}
}

// COMAClientConfig is a cache-only attraction memory: DRAM-sized and
// DRAM-latency, so lines the node touches live locally afterwards.
//
// Simplification vs the DDM design: our home directory retains backing
// capacity for every line, so "last copy" relocation on eviction never
// triggers; the performance-visible property — data migrates and
// replicates to its users, and capacity is node-local DRAM — is
// preserved.
func COMAClientConfig() ClientConfig {
	return ClientConfig{
		CapacityLines: 1 << 18, // 16MB of 64B lines
		HitLat:        sim.FromNanos(98.1),
		AdapterLat:    50 * sim.Nanosecond,
	}
}

type clientLine struct {
	state mesi
	lru   uint64
	data  [64]byte
}

// Client is one node's participant in the directory protocol: a coherent
// cache (or attraction memory) plus the snoop responder, registered on
// the host's FHA endpoint.
type Client struct {
	eng  *sim.Engine
	h    *host.Host
	home flit.PortID
	cfg  ClientConfig

	lines map[uint64]*clientLine
	// wbPending holds dirty data of lines evicted but whose writeback
	// has not yet been acknowledged; snoops are answered from here so a
	// late writeback can never lose the newest data.
	wbPending map[uint64][64]byte
	tick      uint64
	// pending serializes client ops per line and against snoops.
	pending map[uint64][]func()
	busy    map[uint64]bool

	// Metrics.
	Hits      sim.Counter
	Misses    sim.Counter
	Upgrades  sim.Counter // S->M requiring a directory round trip
	Evictions sim.Counter
	SnoopsIn  sim.Counter
}

// NewClient registers a coherence client for home on h's endpoint.
func NewClient(eng *sim.Engine, h *host.Host, home flit.PortID, cfg ClientConfig) *Client {
	c := &Client{
		eng: eng, h: h, home: home, cfg: cfg,
		lines:     make(map[uint64]*clientLine),
		wbPending: make(map[uint64][64]byte),
		pending:   make(map[uint64][]func()),
		busy:      make(map[uint64]bool),
	}
	h.Handle(flit.OpSnpInv, c.handleSnoop)
	h.Handle(flit.OpSnpData, c.handleSnoop)
	return c
}

// Host returns the underlying host.
func (c *Client) Host() *host.Host { return c.h }

// acquire serializes per-line work; release runs the next queued op.
func (c *Client) acquire(addr uint64, fn func(release func())) {
	run := func() {
		c.busy[addr] = true
		fn(func() {
			c.busy[addr] = false
			if q := c.pending[addr]; len(q) > 0 {
				next := q[0]
				c.pending[addr] = q[1:]
				next()
			} else {
				delete(c.pending, addr)
			}
		})
	}
	if c.busy[addr] {
		c.pending[addr] = append(c.pending[addr], run)
		return
	}
	run()
}

// Read returns the 64B line at device address addr (line-aligned).
func (c *Client) Read(addr uint64) *sim.Future[[]byte] {
	addr &^= 63
	f := sim.NewFuture[[]byte]()
	c.acquire(addr, func(release func()) {
		if l, ok := c.lines[addr]; ok && l.state != stI {
			c.Hits.Inc()
			c.touch(l)
			c.eng.After(c.cfg.HitLat, func() {
				data := append([]byte(nil), l.data[:]...)
				release()
				f.Complete(data)
			})
			return
		}
		c.Misses.Inc()
		c.protocol(flit.OpCacheRd, addr, nil, func(grant uint32, data []byte) {
			st := stS
			if grant == grantExclusive {
				st = stE
			}
			l := c.install(addr, data, st)
			out := append([]byte(nil), l.data[:]...)
			release()
			f.Complete(out)
		})
	})
	return f
}

// Write stores data (≤64B) into the line at addr, obtaining ownership
// first if needed.
func (c *Client) Write(addr uint64, data []byte) *sim.Future[struct{}] {
	base := addr &^ 63
	off := addr - base
	if off+uint64(len(data)) > 64 {
		panic("coherence: Write crosses a line")
	}
	f := sim.NewFuture[struct{}]()
	c.acquire(base, func(release func()) {
		if l, ok := c.lines[base]; ok && (l.state == stM || l.state == stE) {
			c.Hits.Inc()
			l.state = stM
			c.touch(l)
			copy(l.data[off:], data)
			c.eng.After(c.cfg.HitLat, func() {
				release()
				f.Complete(struct{}{})
			})
			return
		}
		if l, ok := c.lines[base]; ok && l.state == stS {
			c.Upgrades.Inc()
		} else {
			c.Misses.Inc()
		}
		c.protocol(flit.OpCacheRdOwn, base, nil, func(grant uint32, lineData []byte) {
			if grant != grantModified {
				panic(fmt.Sprintf("coherence: RdOwn granted %d", grant))
			}
			l := c.install(base, lineData, stM)
			copy(l.data[off:], data)
			release()
			f.Complete(struct{}{})
		})
	})
	return f
}

// ReadP / WriteP are the blocking forms.
func (c *Client) ReadP(p *sim.Proc, addr uint64) []byte { return c.Read(addr).MustAwait(p) }

// WriteP blocks until the write commits with ownership.
func (c *Client) WriteP(p *sim.Proc, addr uint64, data []byte) { c.Write(addr, data).MustAwait(p) }

// Read64P reads a uint64 coherently.
func (c *Client) Read64P(p *sim.Proc, addr uint64) uint64 {
	b := c.ReadP(p, addr)
	off := addr & 63
	v := uint64(0)
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[off+uint64(i)])
	}
	return v
}

// Write64P writes a uint64 coherently.
func (c *Client) Write64P(p *sim.Proc, addr uint64, v uint64) {
	b := [8]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56)}
	c.WriteP(p, addr, b[:])
}

// protocol issues one coherent request to the home directory.
func (c *Client) protocol(op flit.Op, addr uint64, data []byte,
	done func(grant uint32, data []byte)) {
	req := &flit.Packet{Chan: flit.ChCache, Op: op, Dst: c.home, Addr: addr}
	if data != nil {
		req.Size = uint32(len(data))
		req.Data = append([]byte(nil), data...)
	}
	c.eng.After(c.cfg.AdapterLat, func() {
		c.h.Endpoint().Request(req).OnComplete(func(resp *flit.Packet, err error) {
			if err != nil {
				panic("coherence: protocol request failed: " + err.Error())
			}
			done(resp.ReqLen, resp.Data)
		})
	})
}

func (c *Client) touch(l *clientLine) {
	c.tick++
	l.lru = c.tick
}

// install places a line, evicting LRU if at capacity. Evicted M lines
// write back; E lines send a dataless eviction notice; S lines leave
// silently.
func (c *Client) install(addr uint64, data []byte, st mesi) *clientLine {
	if l, ok := c.lines[addr]; ok {
		l.state = st
		copy(l.data[:], data)
		c.touch(l)
		return l
	}
	if len(c.lines) >= c.cfg.CapacityLines {
		c.evictLRU()
	}
	l := &clientLine{state: st}
	copy(l.data[:], data)
	c.lines[addr] = l
	c.touch(l)
	return l
}

func (c *Client) evictLRU() {
	var victim uint64
	var vl *clientLine
	oldest := ^uint64(0)
	for a, l := range c.lines {
		if l.lru < oldest && !c.busy[a] {
			victim, vl, oldest = a, l, l.lru
		}
	}
	if vl == nil {
		return // everything busy; allow temporary overcommit
	}
	c.Evictions.Inc()
	delete(c.lines, victim)
	switch vl.state {
	case stM:
		c.wbPending[victim] = vl.data
		// The per-line lock is held for the writeback's duration, so a
		// re-request of this line waits until the directory has
		// processed the eviction.
		c.acquire(victim, func(release func()) {
			c.protocol(flit.OpCacheWB, victim, vl.data[:], func(uint32, []byte) {
				delete(c.wbPending, victim)
				release()
			})
		})
	case stE:
		c.acquire(victim, func(release func()) {
			c.protocol(flit.OpCacheWB, victim, nil, func(uint32, []byte) { release() })
		})
	}
}

// handleSnoop answers directory snoops against the local cache.
func (c *Client) handleSnoop(req *flit.Packet, reply func(*flit.Packet)) {
	c.SnoopsIn.Inc()
	addr := req.Addr &^ 63
	l, ok := c.lines[addr]
	respond := func(data []byte) {
		resp := req.Response(flit.OpSnpResp, uint32(len(data)))
		resp.Data = append([]byte(nil), data...)
		c.eng.After(c.cfg.AdapterLat, func() { reply(resp) })
	}
	if !ok || l.state == stI {
		// A line evicted with its writeback still in flight is answered
		// from the writeback buffer (the directory drops the late
		// writeback's stale home update).
		if wb, inFlight := c.wbPending[addr]; inFlight {
			respond(wb[:])
			return
		}
		respond(nil)
		return
	}
	switch req.Op {
	case flit.OpSnpInv:
		dirty := l.state == stM
		data := l.data
		delete(c.lines, addr)
		if dirty {
			respond(data[:])
			return
		}
		respond(nil)
	case flit.OpSnpData:
		dirty := l.state == stM
		l.state = stS
		if dirty {
			respond(l.data[:])
			return
		}
		respond(nil)
	default:
		panic("coherence: unexpected snoop " + req.Op.String())
	}
}

// LinesCached reports the client's resident line count.
func (c *Client) LinesCached() int { return len(c.lines) }
