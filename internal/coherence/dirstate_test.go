package coherence

import (
	"testing"

	"fcc/internal/fabric"
	"fcc/internal/host"
	"fcc/internal/link"
	"fcc/internal/mem"
	"fcc/internal/sim"
)

// These tests pin the directory's state machine transition by
// transition (via StateOf), so the open-addressed table and sharer
// bitmask land against an explicit spec rather than only the
// workload-level tests in coherence_test.go.

// TestDirStateSharedToExclusiveUpgrade walks uncached -> exclusive ->
// shared(2) -> exclusive: a sole reader gets E, a second reader
// downgrades it to S, and a sharer's write upgrades the line back to
// exclusive after invalidating the other sharer.
func TestDirStateSharedToExclusiveUpgrade(t *testing.T) {
	eng, cs, dir := ccRig(t, 2, DefaultClientConfig())
	const addr = 0x400
	eng.Go("driver", func(p *sim.Proc) {
		if st := dir.StateOf(addr); st != "uncached" {
			t.Errorf("initial state %s, want uncached", st)
		}
		cs[0].Read64P(p, addr)
		if st := dir.StateOf(addr); st != "exclusive" {
			t.Errorf("after sole read: %s, want exclusive", st)
		}
		cs[1].Read64P(p, addr)
		if st := dir.StateOf(addr); st != "shared(2)" {
			t.Errorf("after second read: %s, want shared(2)", st)
		}
		cs[0].Write64P(p, addr, 99)
		if st := dir.StateOf(addr); st != "exclusive" {
			t.Errorf("after S->M upgrade: %s, want exclusive", st)
		}
		// The former sharer's copy must be gone: its next read misses
		// and observes the upgraded write.
		if got := cs[1].Read64P(p, addr); got != 99 {
			t.Errorf("former sharer read %d after upgrade, want 99", got)
		}
	})
	eng.Run()
	if cs[0].Upgrades.Value() == 0 {
		t.Error("S->M transition not counted as an upgrade round trip")
	}
}

// TestDirStateInvalidationWithMultipleSharers builds shared(3) and then
// writes from one sharer: the directory must snoop-invalidate both
// other sharers (sorted bitmask iteration), and every former sharer's
// re-read must miss and observe the new value.
func TestDirStateInvalidationWithMultipleSharers(t *testing.T) {
	eng, cs, dir := ccRig(t, 3, DefaultClientConfig())
	const addr = 0x500
	eng.Go("driver", func(p *sim.Proc) {
		for _, c := range cs {
			c.Read64P(p, addr)
		}
		if st := dir.StateOf(addr); st != "shared(3)" {
			t.Errorf("after three reads: %s, want shared(3)", st)
		}
		cs[2].Write64P(p, addr, 7)
		if st := dir.StateOf(addr); st != "exclusive" {
			t.Errorf("after write: %s, want exclusive", st)
		}
		for i, c := range cs {
			if got := c.Read64P(p, addr); got != 7 {
				t.Errorf("client %d read %d after invalidation, want 7", i, got)
			}
		}
	})
	eng.Run()
	// Both non-writing sharers must have seen an invalidation snoop.
	if cs[0].SnoopsIn.Value() == 0 || cs[1].SnoopsIn.Value() == 0 {
		t.Errorf("snoops in: client0=%d client1=%d, want both > 0",
			cs[0].SnoopsIn.Value(), cs[1].SnoopsIn.Value())
	}
}

// TestDirStateReadmissionAfterFault drives a dirty line out of the
// directory via capacity eviction (exclusive -> writeback -> uncached,
// freeing the table entry), power-cycles the home FAM, and then
// re-reads the line: re-admission must allocate a fresh entry, return
// the written-back data from home, and grant exclusive again.
func TestDirStateReadmissionAfterFault(t *testing.T) {
	eng := sim.NewEngine()
	b := fabric.NewBuilder(eng)
	sw := b.AddSwitch("fs0", fabric.DefaultSwitchConfig())
	att, err := b.AttachEndpoint(sw, "h0", fabric.RoleHost, link.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := host.New(eng, att.Name, host.DefaultConfig(), att)
	fa, err := b.AttachEndpoint(sw, "fam0", fabric.RoleFAM, link.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fam := mem.NewFAM(eng, fa, mem.DefaultFAMConfig(1<<28))
	dir := NewDirectory(eng, fam)
	if err := b.Discover(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClientConfig()
	cfg.CapacityLines = 1 // any second line evicts the first
	cl := NewClient(eng, h, dir.ID(), cfg)

	const addrA, addrB = 0x600, 0x680
	eng.Go("fill", func(p *sim.Proc) {
		cl.Write64P(p, addrA, 5)
		if st := dir.StateOf(addrA); st != "exclusive" {
			t.Errorf("after write: %s, want exclusive", st)
		}
		// Reading B evicts dirty A from the 1-line cache; the eviction
		// writeback retires A's directory entry.
		cl.Read64P(p, addrB)
	})
	eng.Run()
	if st := dir.StateOf(addrA); st != "uncached" {
		t.Fatalf("after eviction writeback: %s, want uncached", st)
	}
	if cl.Evictions.Value() == 0 {
		t.Fatal("no eviction with a 1-line cache")
	}

	// Power-cycle the home device between the eviction and the re-read:
	// the epoch bump must not disturb retired directory state.
	fam.Fail()
	fam.Recover()

	eng.Go("readmit", func(p *sim.Proc) {
		if got := cl.Read64P(p, addrA); got != 5 {
			t.Errorf("re-admitted read %d, want 5 from home", got)
		}
		if st := dir.StateOf(addrA); st != "exclusive" {
			t.Errorf("after re-admission: %s, want exclusive", st)
		}
	})
	eng.Run()
}
