// Package coherence implements the memory-node types the paper's
// Difference #2 enumerates, beyond the plain CPU-less expander:
//
//   - CC-NUMA: a cross-node, directory-based, write-invalidate MESI
//     protocol implemented in the FEA (Directory) and the FHA of each
//     participating host (Client) — the lineage of DASH/FLASH.
//   - Non-CC-NUMA: load/store access without hardware coherence; the
//     NCCClient offers software acquire/release barriers instead (the
//     SCC / Cell SPE model).
//   - COMA: cache-only attraction memory — realised as the same
//     directory protocol with a DRAM-sized, DRAM-latency attraction
//     memory per node, so data migrates/replicates to its users
//     (the DDM model; COMAConfig documents the simplification).
//
// All protocol traffic travels as real CXL.cache packets through the
// simulated fabric.
package coherence

import (
	"fmt"
	"sort"

	"fcc/internal/flit"
	"fcc/internal/mem"
	"fcc/internal/sim"
)

// Grant codes carried in OpCacheResp.ReqLen.
const (
	grantShared    = 1
	grantExclusive = 2
	grantModified  = 3
)

// dirState is the directory's view of one line.
type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirExclusive // single owner, possibly dirty (E or M at the owner)
)

type dirEntry struct {
	state   dirState
	owner   flit.PortID
	sharers map[flit.PortID]bool
	busy    bool
	queue   []func()
}

// Directory is the home-node coherence engine living in a FAM's FEA. It
// serializes protocol actions per line and uses the device's DRAM as the
// backing home memory. Non-coherent traffic passes through to the FAM.
type Directory struct {
	eng   *sim.Engine
	fam   *mem.FAM
	lines map[uint64]*dirEntry

	// Metrics.
	ReadMisses  sim.Counter
	WriteMisses sim.Counter
	Snoops      sim.Counter
	Writebacks  sim.Counter
	Forwards    sim.Counter // dirty data supplied by a remote owner
}

// NewDirectory wraps fam with a coherence directory.
func NewDirectory(eng *sim.Engine, fam *mem.FAM) *Directory {
	d := &Directory{eng: eng, fam: fam, lines: make(map[uint64]*dirEntry)}
	fam.SetHandler(d.handle)
	return d
}

// ID reports the home node's fabric port.
func (d *Directory) ID() flit.PortID { return d.fam.ID() }

func (d *Directory) entry(addr uint64) *dirEntry {
	e, ok := d.lines[addr]
	if !ok {
		e = &dirEntry{sharers: make(map[flit.PortID]bool)}
		d.lines[addr] = e
	}
	return e
}

// handle dispatches device traffic: coherent ops to the protocol engine,
// everything else to the FAM.
func (d *Directory) handle(req *flit.Packet, reply func(*flit.Packet)) {
	switch req.Op {
	case flit.OpCacheRd, flit.OpCacheRdOwn, flit.OpCacheWB:
		addr := req.Addr &^ 63
		e := d.entry(addr)
		run := func() {
			e.busy = true
			d.serve(e, addr, req, func(resp *flit.Packet) {
				reply(resp)
				e.busy = false
				if len(e.queue) > 0 {
					next := e.queue[0]
					e.queue = e.queue[1:]
					next()
				}
			})
		}
		if e.busy {
			e.queue = append(e.queue, run)
			return
		}
		run()
	default:
		d.fam.Serve(req, reply)
	}
}

// serve executes one serialized protocol action.
func (d *Directory) serve(e *dirEntry, addr uint64, req *flit.Packet, reply func(*flit.Packet)) {
	fea := d.fam.FEALat()
	switch req.Op {
	case flit.OpCacheRd:
		d.ReadMisses.Inc()
		switch e.state {
		case dirUncached:
			d.readHome(addr, func(data []byte) {
				e.state = dirExclusive
				e.owner = req.Src
				d.eng.After(fea, func() { reply(grantResp(req, grantExclusive, data)) })
			})
		case dirShared:
			d.readHome(addr, func(data []byte) {
				e.sharers[req.Src] = true
				d.eng.After(fea, func() { reply(grantResp(req, grantShared, data)) })
			})
		case dirExclusive:
			if e.owner == req.Src {
				// Owner re-reading its own line (stale directory after a
				// lost eviction notice): re-grant from home.
				d.readHome(addr, func(data []byte) {
					d.eng.After(fea, func() { reply(grantResp(req, grantExclusive, data)) })
				})
				return
			}
			// Downgrade the owner; it supplies the (possibly dirty) data.
			d.snoop(flit.OpSnpData, e.owner, addr, func(dirty []byte) {
				done := func(data []byte) {
					e.sharers[e.owner] = true
					e.sharers[req.Src] = true
					e.owner = 0
					e.state = dirShared
					d.eng.After(fea, func() { reply(grantResp(req, grantShared, data)) })
				}
				if dirty != nil {
					d.Forwards.Inc()
					d.writeHome(addr, dirty, func() { done(dirty) })
					return
				}
				d.readHome(addr, done)
			})
		}
	case flit.OpCacheRdOwn:
		d.WriteMisses.Inc()
		switch e.state {
		case dirUncached:
			d.grantOwnership(e, addr, req, reply, nil)
		case dirShared:
			targets := make([]flit.PortID, 0, len(e.sharers))
			for s := range e.sharers {
				if s != req.Src {
					targets = append(targets, s)
				}
			}
			// Snoop in sorted port order: e.sharers is a map, and
			// invalidateAll schedules packets in targets order, so map
			// iteration would make same-seed runs diverge (fcclint:
			// maporder).
			sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
			d.invalidateAll(targets, addr, func() {
				e.sharers = make(map[flit.PortID]bool)
				d.grantOwnership(e, addr, req, reply, nil)
			})
		case dirExclusive:
			if e.owner == req.Src {
				// Owner re-requesting (e.g. lost race with its own
				// eviction); just re-grant.
				d.grantOwnership(e, addr, req, reply, nil)
				return
			}
			d.snoop(flit.OpSnpInv, e.owner, addr, func(dirty []byte) {
				if dirty != nil {
					d.Forwards.Inc()
					d.writeHome(addr, dirty, func() {
						d.grantOwnership(e, addr, req, reply, dirty)
					})
					return
				}
				d.grantOwnership(e, addr, req, reply, nil)
			})
		}
	case flit.OpCacheWB:
		d.Writebacks.Inc()
		stillOwner := e.state == dirExclusive && e.owner == req.Src
		finish := func() {
			if stillOwner {
				e.state = dirUncached
				e.owner = 0
			} else {
				delete(e.sharers, req.Src)
				if len(e.sharers) == 0 && e.state == dirShared {
					e.state = dirUncached
				}
			}
			d.eng.After(fea, func() { reply(req.Response(flit.OpCacheResp, 0)) })
		}
		// A writeback from a node that no longer owns the line lost a
		// race with a snoop that already supplied the fresh data; its
		// home update is stale and must be dropped.
		if req.Size > 0 && stillOwner {
			d.writeHome(addr, req.Data, finish)
			return
		}
		finish()
	}
}

func (d *Directory) grantOwnership(e *dirEntry, addr uint64, req *flit.Packet,
	reply func(*flit.Packet), dirty []byte) {
	fea := d.fam.FEALat()
	done := func(data []byte) {
		e.state = dirExclusive
		e.owner = req.Src
		d.eng.After(fea, func() { reply(grantResp(req, grantModified, data)) })
	}
	if dirty != nil {
		done(dirty)
		return
	}
	d.readHome(addr, done)
}

func grantResp(req *flit.Packet, grant uint32, data []byte) *flit.Packet {
	resp := req.Response(flit.OpCacheResp, uint32(len(data)))
	resp.ReqLen = grant
	resp.Data = append([]byte(nil), data...)
	return resp
}

// snoop sends a snoop to one node; done receives dirty data or nil.
func (d *Directory) snoop(op flit.Op, target flit.PortID, addr uint64, done func(dirty []byte)) {
	d.Snoops.Inc()
	req := &flit.Packet{Chan: flit.ChCache, Op: op, Dst: target, Addr: addr}
	d.fam.Endpoint().Request(req).OnComplete(func(resp *flit.Packet, err error) {
		if err != nil {
			panic(fmt.Sprintf("coherence: snoop %v to %d failed: %v", op, target, err))
		}
		if resp.Size > 0 {
			done(resp.Data)
			return
		}
		done(nil)
	})
}

// invalidateAll snoops every target in parallel and calls done when all
// have acknowledged.
func (d *Directory) invalidateAll(targets []flit.PortID, addr uint64, done func()) {
	if len(targets) == 0 {
		done()
		return
	}
	remaining := len(targets)
	for _, t := range targets {
		d.snoop(flit.OpSnpInv, t, addr, func(dirty []byte) {
			// Shared copies are clean by protocol invariant; dirty data
			// here would be a protocol bug.
			if dirty != nil {
				panic("coherence: dirty data from a shared copy")
			}
			remaining--
			if remaining == 0 {
				done()
			}
		})
	}
}

func (d *Directory) readHome(addr uint64, done func([]byte)) {
	d.fam.DRAM().Read(addr, 64, done)
}

func (d *Directory) writeHome(addr uint64, data []byte, done func()) {
	d.fam.DRAM().Write(addr, data, done)
}

// StateOf reports the directory's view of a line (testing/diagnostics):
// "uncached", "shared(n)", or "exclusive".
func (d *Directory) StateOf(addr uint64) string {
	e, ok := d.lines[addr&^63]
	if !ok {
		return "uncached"
	}
	switch e.state {
	case dirShared:
		return fmt.Sprintf("shared(%d)", len(e.sharers))
	case dirExclusive:
		return "exclusive"
	default:
		return "uncached"
	}
}

// RegisterStats attaches the directory's protocol counters to a registry.
func (d *Directory) RegisterStats(s *sim.Stats) {
	s.Register("read_misses", &d.ReadMisses)
	s.Register("write_misses", &d.WriteMisses)
	s.Register("snoops", &d.Snoops)
	s.Register("writebacks", &d.Writebacks)
	s.Register("forwards", &d.Forwards)
	s.Gauge("tracked_lines", func() int64 { return int64(len(d.lines)) })
}
