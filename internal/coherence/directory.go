// Package coherence implements the memory-node types the paper's
// Difference #2 enumerates, beyond the plain CPU-less expander:
//
//   - CC-NUMA: a cross-node, directory-based, write-invalidate MESI
//     protocol implemented in the FEA (Directory) and the FHA of each
//     participating host (Client) — the lineage of DASH/FLASH.
//   - Non-CC-NUMA: load/store access without hardware coherence; the
//     NCCClient offers software acquire/release barriers instead (the
//     SCC / Cell SPE model).
//   - COMA: cache-only attraction memory — realised as the same
//     directory protocol with a DRAM-sized, DRAM-latency attraction
//     memory per node, so data migrates/replicates to its users
//     (the DDM model; COMAConfig documents the simplification).
//
// All protocol traffic travels as real CXL.cache packets through the
// simulated fabric.
package coherence

//fcclint:hotpath directory lookup/snoop structures must stay dense (PR 5)

import (
	"fmt"
	"math/bits"

	"fcc/internal/flit"
	"fcc/internal/mem"
	"fcc/internal/sim"
)

// Grant codes carried in OpCacheResp.ReqLen.
const (
	grantShared    = 1
	grantExclusive = 2
	grantModified  = 3
)

// dirState is the directory's view of one line.
type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirExclusive // single owner, possibly dirty (E or M at the owner)
)

// portSet is a bitmask over fabric port IDs (12-bit, so at most 64
// words), grown to the highest member seen. Iteration walks set bits in
// ascending port order, so snoop fan-out derived from it is sorted by
// construction — the PR 3 maporder fix is structural now, not a sort
// call.
type portSet struct {
	words []uint64
	n     int
}

func (s *portSet) add(p flit.PortID) {
	w := int(p) >> 6
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	bit := uint64(1) << (p & 63)
	if s.words[w]&bit == 0 {
		s.words[w] |= bit
		s.n++
	}
}

func (s *portSet) remove(p flit.PortID) {
	w := int(p) >> 6
	if w < len(s.words) {
		bit := uint64(1) << (p & 63)
		if s.words[w]&bit != 0 {
			s.words[w] &^= bit
			s.n--
		}
	}
}

// clear empties the set, keeping its storage for reuse.
func (s *portSet) clear() {
	clear(s.words)
	s.n = 0
}

// appendPorts appends the members to dst in ascending port order.
func (s *portSet) appendPorts(dst []flit.PortID) []flit.PortID {
	for wi, w := range s.words {
		for w != 0 {
			dst = append(dst, flit.PortID(wi<<6+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

type dirEntry struct {
	state    dirState
	owner    flit.PortID
	sharers  portSet
	busy     bool
	queue    []func()
	nextFree *dirEntry
}

// dirSlot is one open-addressed table slot; e == nil marks it empty.
type dirSlot struct {
	addr uint64
	e    *dirEntry
}

// Directory is the home-node coherence engine living in a FAM's FEA. It
// serializes protocol actions per line and uses the device's DRAM as the
// backing home memory. Non-coherent traffic passes through to the FAM.
type Directory struct {
	eng *sim.Engine
	fam *mem.FAM

	// The line table is open-addressed (power-of-two slots, linear
	// probing, grown at 3/4 load) instead of a Go map: the per-miss
	// lookup is one multiplicative hash and a short probe, with no map
	// header or bucket overhead. Entries are slab-allocated and
	// recycled through freeEnt; a line's entry persists once touched
	// (exactly the original map's behaviour), so probing needs no
	// tombstones.
	slots   []dirSlot
	nlines  int
	entSlab []dirEntry
	freeEnt *dirEntry

	// targetScratch is reused for snoop fan-out lists; invalidateAll
	// consumes the list synchronously, so one buffer suffices.
	targetScratch []flit.PortID

	// opFree recycles the per-action pipeline records; their step
	// callbacks are bound once, so the snoop-free protocol paths (plain
	// grants and writebacks) allocate only the response packet.
	opFree *dirOp

	// Metrics.
	ReadMisses  sim.Counter
	WriteMisses sim.Counter
	Snoops      sim.Counter
	Writebacks  sim.Counter
	Forwards    sim.Counter // dirty data supplied by a remote owner
}

// NewDirectory wraps fam with a coherence directory.
func NewDirectory(eng *sim.Engine, fam *mem.FAM) *Directory {
	d := &Directory{eng: eng, fam: fam, slots: make([]dirSlot, 64)}
	fam.SetHandler(d.handle)
	return d
}

// ID reports the home node's fabric port.
func (d *Directory) ID() flit.PortID { return d.fam.ID() }

func dirHash(addr uint64) uint64 {
	h := (addr >> 6) * 0x9E3779B97F4A7C15
	return h ^ h>>32
}

func (d *Directory) allocEntry() *dirEntry {
	if e := d.freeEnt; e != nil {
		d.freeEnt = e.nextFree
		e.nextFree = nil
		return e
	}
	if len(d.entSlab) == 0 {
		d.entSlab = make([]dirEntry, 64)
	}
	e := &d.entSlab[0]
	d.entSlab = d.entSlab[1:]
	return e
}

func (d *Directory) growTable() {
	old := d.slots
	d.slots = make([]dirSlot, 2*len(old))
	mask := uint64(len(d.slots) - 1)
	for _, s := range old {
		if s.e == nil {
			continue
		}
		i := dirHash(s.addr) & mask
		for d.slots[i].e != nil {
			i = (i + 1) & mask
		}
		d.slots[i] = s
	}
}

// lookup finds an existing entry, or nil.
func (d *Directory) lookup(addr uint64) *dirEntry {
	mask := uint64(len(d.slots) - 1)
	for i := dirHash(addr) & mask; ; i = (i + 1) & mask {
		s := &d.slots[i]
		if s.e == nil {
			return nil
		}
		if s.addr == addr {
			return s.e
		}
	}
}

// entry finds or inserts the entry for a line address.
func (d *Directory) entry(addr uint64) *dirEntry {
	mask := uint64(len(d.slots) - 1)
	i := dirHash(addr) & mask
	for d.slots[i].e != nil {
		if d.slots[i].addr == addr {
			return d.slots[i].e
		}
		i = (i + 1) & mask
	}
	if 4*(d.nlines+1) >= 3*len(d.slots) {
		d.growTable()
		mask = uint64(len(d.slots) - 1)
		i = dirHash(addr) & mask
		for d.slots[i].e != nil {
			i = (i + 1) & mask
		}
	}
	e := d.allocEntry()
	d.slots[i] = dirSlot{addr: addr, e: e}
	d.nlines++
	return e
}

// dirOp carries one serialized protocol action. Its step callbacks are
// bound once at construction and the record recycled, so the snoop-free
// paths — plain grants from home and writebacks, the overwhelming bulk
// of directory traffic — allocate only their response packet. The
// snoop-bearing branches keep closures: they are multi-branch and rare
// by comparison.
type dirOp struct {
	d          *Directory
	next       *dirOp
	e          *dirEntry
	addr       uint64
	req        *flit.Packet
	reply      func(*flit.Packet)
	grant      uint32
	data       []byte
	stillOwner bool

	run      func()
	unlock   func(*flit.Packet)
	homeDone func([]byte)
	grantFn  func()
	wbStep   func()
	wbReply  func()
}

func (d *Directory) getOp() *dirOp {
	op := d.opFree
	if op == nil {
		op = &dirOp{d: d}
		op.run = func() {
			op.e.busy = true
			op.d.serve(op)
		}
		op.unlock = op.replyUnlock
		op.homeDone = op.grantFromHome
		op.grantFn = func() { op.unlock(grantRespOwned(op.req, op.grant, op.data)) }
		op.wbStep = op.wbApply
		op.wbReply = func() { op.unlock(op.req.Response(flit.OpCacheResp, 0)) }
	} else {
		d.opFree = op.next
		op.next = nil
	}
	return op
}

// replyUnlock sends the response, releases the per-line serialization,
// runs the next queued action, and recycles the op.
func (op *dirOp) replyUnlock(resp *flit.Packet) {
	op.reply(resp)
	e := op.e
	e.busy = false
	if len(e.queue) > 0 {
		next := e.queue[0]
		e.queue = e.queue[1:]
		next()
	}
	d := op.d
	op.e, op.req, op.reply, op.data = nil, nil, nil, nil
	op.next = d.opFree
	d.opFree = op
}

// grantFromHome applies the grant's directory mutation and schedules the
// response after the FEA delay. For grantShared the requester joins the
// sharer set; the exclusive and modified grants install the requester as
// owner (idempotent for an owner re-grant).
func (op *dirOp) grantFromHome(data []byte) {
	op.data = data
	e := op.e
	if op.grant == grantShared {
		e.sharers.add(op.req.Src)
	} else {
		e.state = dirExclusive
		e.owner = op.req.Src
	}
	op.d.eng.After(op.d.fam.FEALat(), op.grantFn)
}

// wbApply retires the writer's copy from the directory state.
func (op *dirOp) wbApply() {
	e := op.e
	if op.stillOwner {
		e.state = dirUncached
		e.owner = 0
	} else {
		e.sharers.remove(op.req.Src)
		if e.sharers.n == 0 && e.state == dirShared {
			e.state = dirUncached
		}
	}
	op.d.eng.After(op.d.fam.FEALat(), op.wbReply)
}

// handle dispatches device traffic: coherent ops to the protocol engine,
// everything else to the FAM.
func (d *Directory) handle(req *flit.Packet, reply func(*flit.Packet)) {
	switch req.Op {
	case flit.OpCacheRd, flit.OpCacheRdOwn, flit.OpCacheWB:
		addr := req.Addr &^ 63
		e := d.entry(addr)
		op := d.getOp()
		op.e, op.addr, op.req, op.reply = e, addr, req, reply
		if e.busy {
			e.queue = append(e.queue, op.run)
			return
		}
		op.run()
	default:
		d.fam.Serve(req, reply)
	}
}

// serve executes one serialized protocol action.
func (d *Directory) serve(op *dirOp) {
	e, addr, req := op.e, op.addr, op.req
	reply := op.unlock
	fea := d.fam.FEALat()
	switch req.Op {
	case flit.OpCacheRd:
		d.ReadMisses.Inc()
		switch e.state {
		case dirUncached:
			op.grant = grantExclusive
			d.readHome(addr, op.homeDone)
		case dirShared:
			op.grant = grantShared
			d.readHome(addr, op.homeDone)
		case dirExclusive:
			if e.owner == req.Src {
				// Owner re-reading its own line (stale directory after a
				// lost eviction notice): re-grant from home.
				op.grant = grantExclusive
				d.readHome(addr, op.homeDone)
				return
			}
			// Downgrade the owner; it supplies the (possibly dirty) data.
			d.snoop(flit.OpSnpData, e.owner, addr, func(dirty []byte) {
				done := func(data []byte) {
					e.sharers.add(e.owner)
					e.sharers.add(req.Src)
					e.owner = 0
					e.state = dirShared
					d.eng.After(fea, func() { reply(grantResp(req, grantShared, data)) })
				}
				if dirty != nil {
					d.Forwards.Inc()
					d.writeHome(addr, dirty, func() { done(dirty) })
					return
				}
				d.readHome(addr, done)
			})
		}
	case flit.OpCacheRdOwn:
		d.WriteMisses.Inc()
		switch e.state {
		case dirUncached:
			op.grant = grantModified
			d.readHome(addr, op.homeDone)
		case dirShared:
			// Bit iteration yields ascending port order, so the snoop
			// fan-out is sorted by construction (maporder invariant) and
			// the scratch list costs no allocation in steady state.
			targets := e.sharers.appendPorts(d.targetScratch[:0])
			k := 0
			for _, t := range targets {
				if t != req.Src {
					targets[k] = t
					k++
				}
			}
			targets = targets[:k]
			d.targetScratch = targets
			d.invalidateAll(targets, addr, func() {
				e.sharers.clear()
				d.grantOwnership(e, addr, req, reply, nil)
			})
		case dirExclusive:
			if e.owner == req.Src {
				// Owner re-requesting (e.g. lost race with its own
				// eviction); just re-grant.
				op.grant = grantModified
				d.readHome(addr, op.homeDone)
				return
			}
			d.snoop(flit.OpSnpInv, e.owner, addr, func(dirty []byte) {
				if dirty != nil {
					d.Forwards.Inc()
					d.writeHome(addr, dirty, func() {
						d.grantOwnership(e, addr, req, reply, dirty)
					})
					return
				}
				d.grantOwnership(e, addr, req, reply, nil)
			})
		}
	case flit.OpCacheWB:
		d.Writebacks.Inc()
		op.stillOwner = e.state == dirExclusive && e.owner == req.Src
		// A writeback from a node that no longer owns the line lost a
		// race with a snoop that already supplied the fresh data; its
		// home update is stale and must be dropped.
		if req.Size > 0 && op.stillOwner {
			d.writeHome(addr, req.Data, op.wbStep)
			return
		}
		op.wbStep()
	}
}

func (d *Directory) grantOwnership(e *dirEntry, addr uint64, req *flit.Packet,
	reply func(*flit.Packet), dirty []byte) {
	fea := d.fam.FEALat()
	done := func(data []byte) {
		e.state = dirExclusive
		e.owner = req.Src
		d.eng.After(fea, func() { reply(grantResp(req, grantModified, data)) })
	}
	if dirty != nil {
		done(dirty)
		return
	}
	d.readHome(addr, done)
}

func grantResp(req *flit.Packet, grant uint32, data []byte) *flit.Packet {
	resp := req.Response(flit.OpCacheResp, uint32(len(data)))
	resp.ReqLen = grant
	resp.Data = append([]byte(nil), data...)
	return resp
}

// grantRespOwned builds a grant around a buffer the directory owns
// outright (fresh from home DRAM), so ownership transfers to the
// response without a copy.
func grantRespOwned(req *flit.Packet, grant uint32, data []byte) *flit.Packet {
	resp := req.Response(flit.OpCacheResp, uint32(len(data)))
	resp.ReqLen = grant
	resp.Data = data
	return resp
}

// snoop sends a snoop to one node; done receives dirty data or nil.
func (d *Directory) snoop(op flit.Op, target flit.PortID, addr uint64, done func(dirty []byte)) {
	d.Snoops.Inc()
	req := &flit.Packet{Chan: flit.ChCache, Op: op, Dst: target, Addr: addr}
	d.fam.Endpoint().Request(req).OnComplete(func(resp *flit.Packet, err error) {
		if err != nil {
			panic(fmt.Sprintf("coherence: snoop %v to %d failed: %v", op, target, err))
		}
		if resp.Size > 0 {
			done(resp.Data)
			return
		}
		done(nil)
	})
}

// invalidateAll snoops every target in parallel and calls done when all
// have acknowledged.
func (d *Directory) invalidateAll(targets []flit.PortID, addr uint64, done func()) {
	if len(targets) == 0 {
		done()
		return
	}
	remaining := len(targets)
	for _, t := range targets {
		d.snoop(flit.OpSnpInv, t, addr, func(dirty []byte) {
			// Shared copies are clean by protocol invariant; dirty data
			// here would be a protocol bug.
			if dirty != nil {
				panic("coherence: dirty data from a shared copy")
			}
			remaining--
			if remaining == 0 {
				done()
			}
		})
	}
}

func (d *Directory) readHome(addr uint64, done func([]byte)) {
	d.fam.DRAM().Read(addr, 64, done)
}

func (d *Directory) writeHome(addr uint64, data []byte, done func()) {
	d.fam.DRAM().Write(addr, data, done)
}

// StateOf reports the directory's view of a line (testing/diagnostics):
// "uncached", "shared(n)", or "exclusive".
func (d *Directory) StateOf(addr uint64) string {
	e := d.lookup(addr &^ 63)
	if e == nil {
		return "uncached"
	}
	switch e.state {
	case dirShared:
		return fmt.Sprintf("shared(%d)", e.sharers.n)
	case dirExclusive:
		return "exclusive"
	default:
		return "uncached"
	}
}

// RegisterStats attaches the directory's protocol counters to a registry.
func (d *Directory) RegisterStats(s *sim.Stats) {
	s.Register("read_misses", &d.ReadMisses)
	s.Register("write_misses", &d.WriteMisses)
	s.Register("snoops", &d.Snoops)
	s.Register("writebacks", &d.Writebacks)
	s.Register("forwards", &d.Forwards)
	s.Gauge("tracked_lines", func() int64 { return int64(d.nlines) })
}
