package coherence

import (
	"testing"

	"fcc/internal/fabric"
	"fcc/internal/host"
	"fcc/internal/link"
	"fcc/internal/mem"
	"fcc/internal/sim"
)

// BenchmarkCoherentReadMiss measures a full directory read-miss round
// trip (simulator cost, not model latency).
func BenchmarkCoherentReadMiss(b *testing.B) {
	eng := sim.NewEngine()
	bd := fabric.NewBuilder(eng)
	sw := bd.AddSwitch("fs0", fabric.DefaultSwitchConfig())
	ha, _ := bd.AttachEndpoint(sw, "h", fabric.RoleHost, link.DefaultConfig())
	h := host.New(eng, "h", host.DefaultConfig(), ha)
	fa, _ := bd.AttachEndpoint(sw, "f", fabric.RoleFAM, link.DefaultConfig())
	fam := mem.NewFAM(eng, fa, mem.DefaultFAMConfig(1<<30))
	dir := NewDirectory(eng, fam)
	if err := bd.Discover(); err != nil {
		b.Fatal(err)
	}
	cfg := DefaultClientConfig()
	cfg.CapacityLines = 8 // force misses
	cl := NewClient(eng, h, dir.ID(), cfg)
	eng.Go("driver", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cl.Read64P(p, uint64(i%10000)*64)
		}
	})
	eng.Run()
}
