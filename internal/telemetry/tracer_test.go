package telemetry

import (
	"strings"
	"testing"

	"fcc/internal/flit"
	"fcc/internal/sim"
)

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(HopRecord{At: sim.Time(i), Seq: uint32(i)})
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint32(6+i) {
			t.Fatalf("records = %v; want seqs 6..9 in order", recs)
		}
	}
}

func TestTracerPacketPath(t *testing.T) {
	tr := NewTracer(64)
	// A packet (src=1, tag=7) crossing two links, interleaved with noise.
	tr.Record(HopRecord{At: 0 * sim.Nanosecond, Port: "host0<->fs0.A", Event: EvPktSend,
		HasPkt: true, Src: 1, Dst: 5, Tag: 7, Op: flit.OpMemRd})
	tr.Record(HopRecord{At: 2 * sim.Nanosecond, Port: "host1<->fs0.A", Event: EvPktSend,
		HasPkt: true, Src: 2, Dst: 5, Tag: 7, Op: flit.OpMemRd}) // same tag, other src
	tr.Record(HopRecord{At: 12 * sim.Nanosecond, Port: "host0<->fs0.B", Event: EvPktDeliver,
		HasPkt: true, Src: 1, Dst: 5, Tag: 7, Op: flit.OpMemRd, Hops: 0})
	tr.Record(HopRecord{At: 13 * sim.Nanosecond, Port: "fam0<->fs0.B", Event: EvPktSend,
		HasPkt: true, Src: 1, Dst: 5, Tag: 7, Op: flit.OpMemRd, Hops: 1})
	tr.Record(HopRecord{At: 25 * sim.Nanosecond, Port: "fam0<->fs0.A", Event: EvPktDeliver,
		HasPkt: true, Src: 1, Dst: 5, Tag: 7, Op: flit.OpMemRd, Hops: 1})

	path := tr.PacketPath(1, 7)
	if len(path) != 4 {
		t.Fatalf("path has %d records, want 4: %v", len(path), path)
	}
	wantPorts := []string{"host0<->fs0.A", "host0<->fs0.B", "fam0<->fs0.B", "fam0<->fs0.A"}
	for i, r := range path {
		if r.Port != wantPorts[i] {
			t.Fatalf("hop %d at %q, want %q", i, r.Port, wantPorts[i])
		}
	}
	out := RenderPath(path)
	for _, want := range []string{"MemRd 1->5 tag=7", "pkt-send", "pkt-deliver", "25ns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered path missing %q:\n%s", want, out)
		}
	}
}

func TestTracerFirstPacket(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(HopRecord{Event: EvFlitTx}) // no identity
	if _, _, ok := tr.FirstPacket(); ok {
		t.Fatal("FirstPacket found identity in identity-free records")
	}
	tr.Record(HopRecord{Event: EvPktSend, HasPkt: true, Src: 3, Tag: 9})
	src, tag, ok := tr.FirstPacket()
	if !ok || src != 3 || tag != 9 {
		t.Fatalf("FirstPacket = %v/%v/%v, want 3/9/true", src, tag, ok)
	}
}
