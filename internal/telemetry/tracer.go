// Package telemetry provides the fabric-wide observability primitives
// the paper's Principle #4 calls for: a flit tracer that records per-hop
// events into a bounded ring buffer, from which a packet's hop-by-hop
// path through the fabric can be reconstructed after the fact. The
// metrics side of observability lives in sim.Stats (registries, JSON
// snapshots); this package covers the event side.
package telemetry

import (
	"fmt"
	"strings"

	"fcc/internal/flit"
	"fcc/internal/sim"
)

// Event classifies one traced link-layer occurrence.
type Event uint8

const (
	// EvPktSend: a packet was enqueued for transmission at a port.
	EvPktSend Event = iota
	// EvFlitTx: a flit of a fresh packet went onto the wire.
	EvFlitTx
	// EvRetransmit: a NAKed flit was re-sent from the replay buffer.
	EvRetransmit
	// EvFlitRx: a flit arrived at the receiving port.
	EvFlitRx
	// EvCRCError: an arriving flit failed its CRC check (error injection).
	EvCRCError
	// EvDupDrop: a stale duplicate retransmission was discarded.
	EvDupDrop
	// EvPktDeliver: a reassembled packet was handed to the port's sink.
	EvPktDeliver
)

var eventNames = [...]string{
	EvPktSend:    "pkt-send",
	EvFlitTx:     "flit-tx",
	EvRetransmit: "retransmit",
	EvFlitRx:     "flit-rx",
	EvCRCError:   "crc-error",
	EvDupDrop:    "dup-drop",
	EvPktDeliver: "pkt-deliver",
}

// String returns the event mnemonic.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// HopRecord is one traced event at one port. Packet identity fields are
// valid only when HasPkt is set — flit-level events on the wire cannot
// name their packet (real flits carry no transaction identity either).
type HopRecord struct {
	At      sim.Time
	Port    string
	Event   Event
	VC      flit.Channel
	Seq     uint32
	Credits int // transmit credits remaining on the VC after the event

	HasPkt bool
	Src    flit.PortID
	Dst    flit.PortID
	Tag    uint16
	Op     flit.Op
	Hops   uint8
}

// String renders one record as a single trace line.
func (r HopRecord) String() string {
	s := fmt.Sprintf("%10s  %-28s %-10s vc=%-9s seq=%-6d cr=%d",
		r.At, r.Port, r.Event, r.VC, r.Seq, r.Credits)
	if r.HasPkt {
		s += fmt.Sprintf("  [%s %d->%d tag=%d hops=%d]", r.Op, r.Src, r.Dst, r.Tag, r.Hops)
	}
	return s
}

// Tracer is a fixed-capacity ring buffer of HopRecords. Recording is
// O(1) and allocation-free after construction; once full, the oldest
// records are overwritten, so an always-on tracer costs bounded memory
// no matter how long the simulation runs.
type Tracer struct {
	buf   []HopRecord
	next  int
	total uint64
}

// NewTracer returns a tracer retaining the last capacity records.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		panic("telemetry: tracer capacity must be positive")
	}
	return &Tracer{buf: make([]HopRecord, 0, capacity)}
}

// Record appends one event, evicting the oldest if the ring is full.
func (t *Tracer) Record(r HopRecord) {
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, r)
	} else {
		t.buf[t.next] = r
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
}

// Total reports how many events were ever recorded (including evicted).
func (t *Tracer) Total() uint64 { return t.total }

// Records returns the retained events in chronological order.
func (t *Tracer) Records() []HopRecord {
	out := make([]HopRecord, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// PacketPath extracts the retained events that carry the identity
// (src, tag) — the packet's send/deliver trail across every port it
// crossed, in time order. With a fabric in between, one logical
// transfer appears as a send/deliver pair per hop.
func (t *Tracer) PacketPath(src flit.PortID, tag uint16) []HopRecord {
	var path []HopRecord
	for _, r := range t.Records() {
		if r.HasPkt && r.Src == src && r.Tag == tag {
			path = append(path, r)
		}
	}
	return path
}

// FirstPacket returns the (src, tag) of the earliest retained packet
// event, or ok=false when nothing with packet identity was traced.
func (t *Tracer) FirstPacket() (src flit.PortID, tag uint16, ok bool) {
	for _, r := range t.Records() {
		if r.HasPkt {
			return r.Src, r.Tag, true
		}
	}
	return 0, 0, false
}

// RenderPath formats a packet's hop records as a human-readable trail.
func RenderPath(path []HopRecord) string {
	if len(path) == 0 {
		return "(no trace records for this packet)\n"
	}
	var b strings.Builder
	first := path[0]
	fmt.Fprintf(&b, "packet %s %d->%d tag=%d:\n", first.Op, first.Src, first.Dst, first.Tag)
	for _, r := range path {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	fmt.Fprintf(&b, "  total path latency: %s over %d recorded events\n",
		path[len(path)-1].At-first.At, len(path))
	return b.String()
}
