// Package fcc is the public face of the Fabric-Centric Computing
// reproduction: a builder that assembles a complete composable
// infrastructure — hosts with calibrated cache hierarchies and FHAs,
// fabric switches with credit-based flow control, fabric-attached
// memory (FAM) and accelerator (FAA) chassis, migration agents, an
// optional coherence directory, and the central fabric arbiter — plus
// accessors for the UniFabric runtime layers (elastic transactions,
// unified heap, idempotent tasks, scalable functions) built on top.
//
// The package wires defaults calibrated against the paper's Omega
// Fabric testbed (Table 2); every knob remains overridable through the
// Config hooks. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the calibration evidence.
package fcc

import (
	"fmt"

	"fcc/internal/arbiter"
	"fcc/internal/coherence"
	"fcc/internal/etrans"
	"fcc/internal/faa"
	"fcc/internal/fabric"
	"fcc/internal/fabstore"
	"fcc/internal/fault"
	"fcc/internal/flit"
	"fcc/internal/host"
	"fcc/internal/link"
	"fcc/internal/mem"
	"fcc/internal/sim"
	"fcc/internal/task"
	"fcc/internal/telemetry"
	"fcc/internal/uheap"
)

// RemoteBase is the host physical address where the first FAM region is
// mapped; FAM i maps at RemoteBase + i*FAMCapacity on every host.
const RemoteBase uint64 = 1 << 36

// Config describes a cluster to build.
type Config struct {
	// Hosts is the number of host servers (≥1).
	Hosts int
	// FAMs is the number of fabric-attached memory chassis.
	FAMs int
	// FAMCapacity is each FAM's size in bytes.
	FAMCapacity uint64
	// FAAs is the number of fabric-attached accelerator chassis.
	FAAs int
	// Agents places one migration agent per FAM chassis (etrans).
	Agents bool
	// Arbiter attaches the central fabric arbiter (Principle #4).
	Arbiter bool
	// Coherent fronts every FAM with a CC-NUMA directory.
	Coherent bool
	// Switches is the number of fabric switches in a line topology
	// (hosts attach to the first, devices spread round-robin). 0 = 1.
	Switches int
	// Ring closes the switch line into a ring (needs ≥ 3 switches),
	// giving every flow two equal-cost directions — the redundancy the
	// fabric manager routes around failures with.
	Ring bool
	// SpreadHosts attaches hosts round-robin across switches like
	// devices, instead of all on the first switch. With Ring this makes
	// blast-radius experiments meaningful: each switch is one failure
	// domain holding a known slice of hosts and devices.
	SpreadHosts bool
	// Pods arranges the switches into Pods equal contiguous blocks —
	// pods of racks. Switches within a pod form a line over ordinary
	// (short, LinkConfig) links; pod i's last switch connects to pod
	// i+1's first switch over a long-haul PodLinkConfig link, closing a
	// pod-level ring. Requires Switches % Pods == 0; mutually exclusive
	// with Ring (pods bring their own ring). With Shards > 1,
	// Pods % Shards == 0 is additionally required so shard boundaries
	// land on pod boundaries: every cut link is then a long-haul pod
	// link, and the coordinator's discovered per-pair lookahead equals
	// the pod-link propagation — orders of magnitude wider than the
	// intra-pod window, which is what makes sharded execution scale
	// (DESIGN.md, "Parallel execution").
	Pods int
	// PodLinkConfig overrides the inter-pod link (nil = LinkConfig with
	// propagation raised to 1 µs: ~200 m of fiber, cross-row optics).
	PodLinkConfig func() link.Config
	// Topology, when set, replaces the hand-built line/ring/pods wiring
	// with a generated datacenter topology (fat-tree or dragonfly, see
	// fabric.TopoSpec). Mutually exclusive with Switches/Ring/Pods.
	// Hosts and devices attach round-robin across the edge tier
	// (generated fabrics always spread — a 512-host cluster on one edge
	// switch is not a topology, it is a bottleneck). The spec's nil
	// link-config hooks default to LinkConfig. With Shards > 1 the
	// switch sequence is cut into contiguous blocks exactly like the
	// line topology (pods/groups are created contiguously, core tier
	// last, so cuts land between structural units when
	// Shards divides the unit count).
	Topology *fabric.TopoSpec
	// Manager attaches the active fabric manager: heartbeat failure
	// detection plus automatic PBR route-around (see fabric.Manager).
	// Its health sweep is perpetual — call Cluster.Manager.Stop() when
	// the workload completes, or use RunFor, since Run() alone would
	// never drain the event queue.
	Manager bool

	// TraceFlits, when positive, attaches a fabric-wide flit tracer
	// retaining the last TraceFlits hop records across every port
	// (endpoint and switch sides). See Cluster.Tracer.
	TraceFlits int

	// Shards > 1 partitions the cluster into that many failure domains
	// (contiguous groups of switches plus their attached endpoints),
	// each running on a private engine, synchronized conservatively by a
	// sim.Coordinator with the inter-switch propagation delay as the
	// lookahead window. Same-seed runs produce byte-identical stats
	// snapshots to the serial (Shards <= 1) build. The centralized
	// services — Manager, Arbiter, Coherent, Agents, TraceFlits — are
	// single-engine designs and must stay off under sharding; use
	// SchedulePlan for deterministic fault injection instead of
	// NewInjector.
	Shards int

	// Hooks to override component defaults (nil = defaults).
	HostConfig    func(i int) host.Config
	LinkConfig    func() link.Config
	SwitchConfig  func() fabric.SwitchConfig
	FAMConfig     func(i int, capacity uint64) mem.FAMConfig
	FAAConfig     func(i int) faa.Config
	ArbiterConfig func() arbiter.Config
	ManagerConfig func() fabric.ManagerConfig
}

// DefaultConfig is one host, one FAM, calibrated defaults.
func DefaultConfig() Config {
	return Config{Hosts: 1, FAMs: 1, FAMCapacity: 1 << 30}
}

// Cluster is an assembled composable infrastructure.
type Cluster struct {
	Eng *sim.Engine
	// Coord synchronizes the failure-domain engines (nil unless
	// Config.Shards > 1). When set, Eng is domain 0's engine; workloads
	// must schedule on their host's own engine (see host.Engine).
	Coord   *sim.Coordinator
	Builder *fabric.Builder
	Hosts   []*host.Host
	FAMs    []*mem.FAM
	FAAs    []*faa.Device
	Agents  []*etrans.Agent
	Arbiter *arbiter.Arbiter
	Dirs    []*coherence.Directory

	// Manager is the active fabric manager (nil unless Config.Manager).
	Manager *fabric.Manager

	// Topo describes the generated topology (nil unless Config.Topology
	// was set): tier slices and pod/group structure, e.g. for aiming a
	// fabric.StormPlan at one pod.
	Topo *fabric.Topology

	// Faults is the fault injector (nil until NewInjector is called).
	Faults *fault.Injector

	// Tracer is the fabric-wide flit tracer (nil unless Config.TraceFlits
	// was set). Every port in the cluster records into this one ring, so
	// a packet's whole path is reconstructable from a single buffer.
	Tracer *telemetry.Tracer

	cfg Config
}

// New assembles a cluster per cfg, runs fabric discovery, and maps all
// FAM regions into every host's address space.
func New(cfg Config) (*Cluster, error) {
	if cfg.Hosts < 1 {
		return nil, fmt.Errorf("fcc: need at least one host")
	}
	if cfg.FAMCapacity == 0 {
		cfg.FAMCapacity = 1 << 30
	}
	if cfg.Switches < 1 {
		cfg.Switches = 1
	}

	lcfg := link.DefaultConfig
	if cfg.LinkConfig != nil {
		lcfg = cfg.LinkConfig
	}
	scfg := fabric.DefaultSwitchConfig
	if cfg.SwitchConfig != nil {
		scfg = cfg.SwitchConfig
	}

	endpoints := cfg.Hosts + cfg.FAMs + cfg.FAAs
	if cfg.Agents {
		endpoints += cfg.FAMs
	}
	if cfg.Arbiter {
		endpoints++
	}
	var topoISLs int
	if cfg.Topology != nil {
		if cfg.Switches > 1 || cfg.Ring || cfg.Pods > 1 {
			return nil, fmt.Errorf("fcc: Topology is mutually exclusive with Switches/Ring/Pods")
		}
		spec := *cfg.Topology
		if spec.ISLConfig == nil {
			spec.ISLConfig = lcfg
			cfg.Topology = &spec
		}
		nsw, nisl, err := spec.Counts()
		if err != nil {
			return nil, err
		}
		// The generated switch count drives the shard checks and the
		// contiguous DomainOf mapping below.
		cfg.Switches, topoISLs = nsw, nisl
	}

	var eng *sim.Engine
	var b *fabric.Builder
	var coord *sim.Coordinator
	if cfg.Pods > 1 {
		switch {
		case cfg.Switches%cfg.Pods != 0:
			return nil, fmt.Errorf("fcc: %d switches do not divide into %d pods", cfg.Switches, cfg.Pods)
		case cfg.Ring:
			return nil, fmt.Errorf("fcc: Ring and Pods are mutually exclusive (pods form their own ring)")
		case cfg.Shards > 1 && cfg.Pods%cfg.Shards != 0:
			return nil, fmt.Errorf("fcc: %d pods do not divide into %d shards (cuts must land on pod boundaries)", cfg.Pods, cfg.Shards)
		}
	}
	if cfg.Shards > 1 {
		switch {
		case cfg.Manager, cfg.Arbiter, cfg.Coherent, cfg.Agents, cfg.TraceFlits > 0:
			return nil, fmt.Errorf("fcc: Shards > 1 cannot host the centralized services (Manager/Arbiter/Coherent/Agents/TraceFlits)")
		case cfg.Shards > cfg.Switches:
			return nil, fmt.Errorf("fcc: %d shards need at least that many switches, have %d", cfg.Shards, cfg.Switches)
		}
		// Default lookahead = the inter-switch propagation delay: every
		// cross-domain interaction crosses a cut ISL, so no shard can
		// affect another sooner than one propagation in the future. This
		// is only the floor — fabric discovery then raises each shard
		// pair to the minimum propagation over its actual cut links
		// (the long-haul pod links, in a pod topology) and releases
		// pairs with no cut link entirely.
		coord = sim.NewCoordinator(cfg.Shards, lcfg().Phys.Propagation)
		b = fabric.NewShardedBuilder(fabric.Sharding{
			Coord: coord,
			// Contiguous blocks: switch i of a line/ring lands in
			// domain i*Shards/Switches, so only block boundaries cut.
			DomainOf: func(i int) int { return i * cfg.Shards / cfg.Switches },
		})
		eng = coord.Engine(0)
	} else {
		eng = sim.NewEngine()
		b = fabric.NewBuilder(eng)
	}
	c := &Cluster{Eng: eng, Coord: coord, Builder: b, cfg: cfg}

	if cfg.Topology != nil {
		b.Reserve(cfg.Switches, topoISLs, endpoints)
		topo, err := fabric.Generate(b, *cfg.Topology, scfg())
		if err != nil {
			return nil, err
		}
		c.Topo = topo
		return assembleEndpoints(c, topo.Edge, topo.Edge, lcfg)
	}

	var switches []*fabric.Switch
	for i := 0; i < cfg.Switches; i++ {
		switches = append(switches, b.AddSwitch(fmt.Sprintf("fs%d", i), scfg()))
	}
	if cfg.Pods > 1 {
		plcfg := cfg.PodLinkConfig
		if plcfg == nil {
			plcfg = func() link.Config {
				pc := lcfg()
				if pc.Phys.Propagation < sim.Microsecond {
					pc.Phys.Propagation = sim.Microsecond
				}
				return pc
			}
		}
		perPod := cfg.Switches / cfg.Pods
		for p := 0; p < cfg.Pods; p++ {
			for i := 1; i < perPod; i++ {
				if err := b.ConnectSwitches(switches[p*perPod+i-1], switches[p*perPod+i], lcfg()); err != nil {
					return nil, err
				}
			}
		}
		// Pod-level ring over the long-haul links: pod p's last switch
		// to pod p+1's first (two parallel links when Pods == 2, which
		// ECMP routing treats as equal-cost redundancy).
		for p := 0; p < cfg.Pods; p++ {
			q := (p + 1) % cfg.Pods
			if err := b.ConnectSwitches(switches[p*perPod+perPod-1], switches[q*perPod], plcfg()); err != nil {
				return nil, err
			}
		}
	} else {
		for i := 1; i < cfg.Switches; i++ {
			if err := b.ConnectSwitches(switches[i-1], switches[i], lcfg()); err != nil {
				return nil, err
			}
		}
		if cfg.Ring && cfg.Switches >= 3 {
			if err := b.ConnectSwitches(switches[cfg.Switches-1], switches[0], lcfg()); err != nil {
				return nil, err
			}
		}
	}
	hostSw := switches
	if !cfg.SpreadHosts {
		hostSw = switches[:1]
	}
	return assembleEndpoints(c, hostSw, switches, lcfg)
}

// assembleEndpoints attaches hosts and devices round-robin over the
// given switch sets, runs discovery, and starts the cluster services —
// the construction tail shared by hand-built and generated topologies.
func assembleEndpoints(c *Cluster, hostSw, devSw []*fabric.Switch, lcfg func() link.Config) (*Cluster, error) {
	cfg, b, eng := c.cfg, c.Builder, c.Eng
	devSwitch := func(i int) *fabric.Switch { return devSw[i%len(devSw)] }
	hostSwitch := func(i int) *fabric.Switch { return hostSw[i%len(hostSw)] }

	for i := 0; i < cfg.Hosts; i++ {
		att, err := b.AttachEndpoint(hostSwitch(i), fmt.Sprintf("host%d", i), fabric.RoleHost, lcfg())
		if err != nil {
			return nil, err
		}
		hc := host.DefaultConfig()
		if cfg.HostConfig != nil {
			hc = cfg.HostConfig(i)
		}
		c.Hosts = append(c.Hosts, host.New(att.Eng, att.Name, hc, att))
	}
	for i := 0; i < cfg.FAMs; i++ {
		att, err := b.AttachEndpoint(devSwitch(i), fmt.Sprintf("fam%d", i), fabric.RoleFAM, lcfg())
		if err != nil {
			return nil, err
		}
		fc := mem.DefaultFAMConfig(cfg.FAMCapacity)
		if cfg.FAMConfig != nil {
			fc = cfg.FAMConfig(i, cfg.FAMCapacity)
		}
		fam := mem.NewFAM(att.Eng, att, fc)
		c.FAMs = append(c.FAMs, fam)
		if cfg.Coherent {
			c.Dirs = append(c.Dirs, coherence.NewDirectory(eng, fam))
		}
	}
	for i := 0; i < cfg.FAAs; i++ {
		att, err := b.AttachEndpoint(devSwitch(i), fmt.Sprintf("faa%d", i), fabric.RoleFAA, lcfg())
		if err != nil {
			return nil, err
		}
		fc := faa.DefaultConfig()
		if cfg.FAAConfig != nil {
			fc = cfg.FAAConfig(i)
		}
		c.FAAs = append(c.FAAs, faa.New(att.Eng, att, fc))
	}
	if cfg.Agents {
		for i := range c.FAMs {
			att, err := b.AttachEndpoint(devSwitch(i), fmt.Sprintf("agent%d", i), fabric.RoleFAA, lcfg())
			if err != nil {
				return nil, err
			}
			c.Agents = append(c.Agents, etrans.NewAgent(eng, att))
		}
	}
	if cfg.Arbiter {
		att, err := b.AttachEndpoint(devSw[0], "arbiter", fabric.RoleManager, lcfg())
		if err != nil {
			return nil, err
		}
		ac := arbiter.DefaultConfig()
		if cfg.ArbiterConfig != nil {
			ac = cfg.ArbiterConfig()
		}
		c.Arbiter = arbiter.New(eng, att, ac)
	}
	if err := b.Discover(); err != nil {
		return nil, err
	}
	if cfg.Manager {
		mc := fabric.DefaultManagerConfig()
		if cfg.ManagerConfig != nil {
			mc = cfg.ManagerConfig()
		}
		c.Manager = fabric.NewManager(eng, b, mc)
	}
	if cfg.TraceFlits > 0 {
		c.Tracer = telemetry.NewTracer(cfg.TraceFlits)
		for _, att := range b.Attachments() {
			att.Port.SetTracer(c.Tracer)
		}
		for _, sw := range b.Switches() {
			for i := 0; i < sw.Ports(); i++ {
				sw.Port(i).SetTracer(c.Tracer)
			}
		}
	}
	// Map every FAM into every host's physical address space.
	for _, h := range c.Hosts {
		for i, f := range c.FAMs {
			base := RemoteBase + uint64(i)*cfg.FAMCapacity
			if err := h.MapRemote(f.Name(), base, cfg.FAMCapacity, f.ID(), 0); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// FAMBase reports where FAM i is mapped in host address space.
func (c *Cluster) FAMBase(i int) uint64 {
	return RemoteBase + uint64(i)*c.cfg.FAMCapacity
}

// NewHeap builds a unified heap on host h with a local pool of
// localBytes and one far pool per FAM.
func (c *Cluster) NewHeap(h *host.Host, hcfg uheap.Config, localBytes uint64) (*uheap.Heap, error) {
	specs := []uheap.PoolSpec{{
		Name: "dimm", Base: 1 << 20, Size: localBytes, Class: uheap.ClassLocal,
	}}
	for i, f := range c.FAMs {
		specs = append(specs, uheap.PoolSpec{
			Name: f.Name(), Base: c.FAMBase(i), Size: c.cfg.FAMCapacity,
			Class: uheap.ClassFar,
		})
	}
	return uheap.New(h, hcfg, specs...)
}

// requireUnsharded guards the runtime-layer helpers that assume one
// shared engine; calling them on a sharded cluster would silently mix
// engines across shard goroutines.
func (c *Cluster) requireUnsharded(what string) {
	if c.Coord != nil {
		panic(fmt.Sprintf("fcc: %s requires an unsharded cluster (Shards <= 1)", what))
	}
}

// NewETrans builds an elastic transaction engine for host h, registered
// with every migration agent (and the arbiter when present).
func (c *Cluster) NewETrans(h *host.Host) *etrans.Engine {
	c.requireUnsharded("NewETrans")
	e := etrans.NewEngine(c.Eng, h.Endpoint())
	for i, a := range c.Agents {
		e.AddAgent(a.ID(), c.FAMs[i].ID())
		if c.Arbiter != nil {
			a.SetArbiter(arbiter.NewClient(a.Endpoint(), c.Arbiter.ID()))
		}
	}
	if c.Arbiter != nil {
		e.SetArbiter(arbiter.NewClient(h.Endpoint(), c.Arbiter.ID()))
	}
	return e
}

// NewTaskRunner builds an idempotent-task runner on host h, with one
// local engine and one engine per FAA.
func (c *Cluster) NewTaskRunner(h *host.Host, seed uint64) *task.Runner {
	c.requireUnsharded("NewTaskRunner")
	r := task.NewRunner(c.Eng, h.Endpoint())
	r.AddEngine(task.NewLocalEngine(c.Eng, h.Name()+"-cpu", seed))
	for _, d := range c.FAAs {
		r.AddEngine(faa.NewEngine(d))
	}
	return r
}

// NewCoherenceClient registers host h as a CC-NUMA participant of the
// directory fronting FAM i (the cluster must be built Coherent).
func (c *Cluster) NewCoherenceClient(h *host.Host, fam int, ccfg coherence.ClientConfig) *coherence.Client {
	return coherence.NewClient(c.Eng, h, c.Dirs[fam].ID(), ccfg)
}

// ArbiterClient returns an arbiter client for host h.
func (c *Cluster) ArbiterClient(h *host.Host) *arbiter.Client {
	return arbiter.NewClient(h.Endpoint(), c.Arbiter.ID())
}

// NewFabStore lays a FabStore (multi-tenant transactional KV, see
// internal/fabstore) across every FAM in the cluster with one client
// per host. When the cluster is Coherent and the store declares hot
// keys, each client's hot-row path goes through the directories; with
// the Arbiter attached, clients reserve bandwidth credit toward the
// destination expander around writes and scan chunks. Both services are
// optional — on sharded clusters (where they are refused) clients use
// the raw retried-transaction path, which is exactly what the
// serial-vs-sharded equivalence experiment runs.
func (c *Cluster) NewFabStore(fcfg fabstore.Config) (*fabstore.Store, error) {
	devs := make([]fabstore.Device, len(c.FAMs))
	for i, f := range c.FAMs {
		devs[i] = fabstore.Device{Port: f.ID(), Capacity: c.cfg.FAMCapacity}
	}
	st, err := fabstore.New(fcfg, devs, c.Hosts)
	if err != nil {
		return nil, err
	}
	for hi, h := range c.Hosts {
		cl := st.Client(hi)
		if len(c.Dirs) > 0 && fcfg.HotKeys > 0 {
			for fi := range c.FAMs {
				cl.UseCoherence(fi, c.NewCoherenceClient(h, fi, coherence.DefaultClientConfig()))
			}
		}
		if c.Arbiter != nil {
			cl.UseArbiter(c.ArbiterClient(h))
		}
	}
	return st, nil
}

// Stats assembles the fabric-wide metrics tree: every switch (with all
// its link ports), host, FAM, FAA, migration agent, coherence directory,
// and the arbiter, each under its stable component name. The tree reads
// live metrics — call Snapshot() on the result after (or during) a run.
func (c *Cluster) Stats() *sim.Stats {
	root := sim.NewStats("cluster")
	for _, sw := range c.Builder.Switches() {
		sw.RegisterStats(root.Child(sw.Name()))
	}
	for _, h := range c.Hosts {
		h.RegisterStats(root.Child(h.Name()))
	}
	for _, f := range c.FAMs {
		f.RegisterStats(root.Child(f.Name()))
	}
	for i, d := range c.FAAs {
		d.RegisterStats(root.Child(fmt.Sprintf("faa%d", i)))
	}
	for i, a := range c.Agents {
		a.RegisterStats(root.Child(fmt.Sprintf("agent%d", i)))
	}
	for i, d := range c.Dirs {
		d.RegisterStats(root.Child(fmt.Sprintf("dir%d", i)))
	}
	if c.Arbiter != nil {
		c.Arbiter.RegisterStats(root.Child("arbiter"))
	}
	if c.Manager != nil {
		c.Manager.RegisterStats(root.Child("manager"))
	}
	if c.Faults != nil {
		c.Faults.RegisterStats(root.Child("fault"))
	}
	return root
}

// NewInjector builds a seeded fault injector with every failable
// component of the cluster registered: all switches, all links
// (inter-switch and endpoint), all FAMs, and all FAAs. The returned
// injector is also stored as c.Faults so Stats() exports its
// blast-radius metrics under the "fault" subtree.
func (c *Cluster) NewInjector(seed uint64) *fault.Injector {
	c.requireUnsharded("NewInjector (use SchedulePlan for sharded runs)")
	in := fault.NewInjector(c.Eng, seed)
	for _, sw := range c.Builder.Switches() {
		in.Register(sw)
	}
	for _, l := range c.Builder.ISLLinks() {
		in.Register(l)
	}
	for _, att := range c.Builder.Attachments() {
		in.Register(att.Link)
	}
	for _, f := range c.FAMs {
		in.Register(f)
	}
	for _, d := range c.FAAs {
		in.Register(d)
	}
	c.Faults = in
	return in
}

// FaultEvent is one entry in a deterministic fault plan: at virtual
// time At, inject Fault into (or, with Heal set, heal Fault.Kind on)
// the named link. Plans are link-scoped because links are the only
// components that can straddle a shard cut; the plan applies each
// side's share on that side's own engine at the same virtual instant,
// which keeps serial and sharded runs byte-identical.
type FaultEvent struct {
	At    sim.Time
	Link  string
	Fault fault.Fault
	Heal  bool
}

// SchedulePlan pre-schedules a fault plan against the cluster's links.
// Unlike NewInjector it works on sharded clusters, adds no stats
// subtree (snapshots stay comparable across serial and sharded runs),
// and is fully deterministic: every event is pinned to a virtual
// timestamp at build time.
func (c *Cluster) SchedulePlan(plan []FaultEvent) error {
	for _, ev := range plan {
		l := c.findLink(ev.Link)
		if l == nil {
			return fmt.Errorf("fcc: fault plan names unknown link %q", ev.Link)
		}
		da, db, _ := c.Builder.LinkSideDomains(l)
		c.scheduleSide(ev, l, da, 0)
		c.scheduleSide(ev, l, db, 1)
	}
	return nil
}

func (c *Cluster) scheduleSide(ev FaultEvent, l *link.Link, domain, side int) {
	c.domainEngine(domain).At(ev.At, func() {
		var err error
		if ev.Heal {
			err = l.HealFaultSide(side, ev.Fault.Kind)
		} else {
			err = l.InjectFaultSide(side, ev.Fault)
		}
		if err != nil {
			panic(fmt.Sprintf("fcc: fault plan on link %s: %v", ev.Link, err))
		}
	})
}

func (c *Cluster) domainEngine(d int) *sim.Engine {
	if c.Coord == nil {
		return c.Eng
	}
	return c.Coord.Engine(d)
}

func (c *Cluster) findLink(name string) *link.Link {
	for _, l := range c.Builder.ISLLinks() {
		if l.FaultID() == name {
			return l
		}
	}
	for _, att := range c.Builder.Attachments() {
		if att.Link.FaultID() == name {
			return att.Link
		}
	}
	return nil
}

// Render draws the topology (the Figure 1b regeneration).
func (c *Cluster) Render() string { return c.Builder.Render() }

// Run drains the simulation (all shards, when sharded).
func (c *Cluster) Run() {
	if c.Coord != nil {
		c.Coord.Run()
		return
	}
	c.Eng.Run()
}

// RunFor advances the simulation by d (all shards, when sharded).
func (c *Cluster) RunFor(d sim.Time) {
	if c.Coord != nil {
		c.Coord.RunFor(d)
		return
	}
	c.Eng.RunFor(d)
}

// Go starts a workload process on the shared engine. On a sharded
// cluster, spawn processes on the owning host's engine instead:
// c.Hosts[i].Engine().Go(...) — a workload touching a host from
// another shard's engine is a race.
func (c *Cluster) Go(name string, fn func(p *sim.Proc)) *sim.Proc {
	c.requireUnsharded("Go (use Hosts[i].Engine().Go)")
	return c.Eng.Go(name, fn)
}

// ProbeDevicesP performs the fabric-manager enumeration pass at runtime:
// host h sends a CXL.io configuration read to every FAM and collects the
// capacities the devices report — the management-plane traffic that in
// real systems populates the FM's inventory.
func (c *Cluster) ProbeDevicesP(p *sim.Proc, h *host.Host) map[string]uint64 {
	out := make(map[string]uint64, len(c.FAMs))
	for _, f := range c.FAMs {
		resp := h.Endpoint().Request(&flit.Packet{
			Chan: flit.ChIO, Op: flit.OpCfgRd, Dst: f.ID(),
		}).MustAwait(p)
		var capacity uint64
		for i := 7; i >= 0; i-- {
			capacity = capacity<<8 | uint64(resp.Data[i])
		}
		out[f.Name()] = capacity
	}
	return out
}
