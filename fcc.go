// Package fcc is the public face of the Fabric-Centric Computing
// reproduction: a builder that assembles a complete composable
// infrastructure — hosts with calibrated cache hierarchies and FHAs,
// fabric switches with credit-based flow control, fabric-attached
// memory (FAM) and accelerator (FAA) chassis, migration agents, an
// optional coherence directory, and the central fabric arbiter — plus
// accessors for the UniFabric runtime layers (elastic transactions,
// unified heap, idempotent tasks, scalable functions) built on top.
//
// The package wires defaults calibrated against the paper's Omega
// Fabric testbed (Table 2); every knob remains overridable through the
// Config hooks. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the calibration evidence.
package fcc

import (
	"fmt"

	"fcc/internal/arbiter"
	"fcc/internal/coherence"
	"fcc/internal/etrans"
	"fcc/internal/faa"
	"fcc/internal/fabric"
	"fcc/internal/fault"
	"fcc/internal/flit"
	"fcc/internal/host"
	"fcc/internal/link"
	"fcc/internal/mem"
	"fcc/internal/sim"
	"fcc/internal/task"
	"fcc/internal/telemetry"
	"fcc/internal/uheap"
)

// RemoteBase is the host physical address where the first FAM region is
// mapped; FAM i maps at RemoteBase + i*FAMCapacity on every host.
const RemoteBase uint64 = 1 << 36

// Config describes a cluster to build.
type Config struct {
	// Hosts is the number of host servers (≥1).
	Hosts int
	// FAMs is the number of fabric-attached memory chassis.
	FAMs int
	// FAMCapacity is each FAM's size in bytes.
	FAMCapacity uint64
	// FAAs is the number of fabric-attached accelerator chassis.
	FAAs int
	// Agents places one migration agent per FAM chassis (etrans).
	Agents bool
	// Arbiter attaches the central fabric arbiter (Principle #4).
	Arbiter bool
	// Coherent fronts every FAM with a CC-NUMA directory.
	Coherent bool
	// Switches is the number of fabric switches in a line topology
	// (hosts attach to the first, devices spread round-robin). 0 = 1.
	Switches int
	// Ring closes the switch line into a ring (needs ≥ 3 switches),
	// giving every flow two equal-cost directions — the redundancy the
	// fabric manager routes around failures with.
	Ring bool
	// SpreadHosts attaches hosts round-robin across switches like
	// devices, instead of all on the first switch. With Ring this makes
	// blast-radius experiments meaningful: each switch is one failure
	// domain holding a known slice of hosts and devices.
	SpreadHosts bool
	// Manager attaches the active fabric manager: heartbeat failure
	// detection plus automatic PBR route-around (see fabric.Manager).
	// Its health sweep is perpetual — call Cluster.Manager.Stop() when
	// the workload completes, or use RunFor, since Run() alone would
	// never drain the event queue.
	Manager bool

	// TraceFlits, when positive, attaches a fabric-wide flit tracer
	// retaining the last TraceFlits hop records across every port
	// (endpoint and switch sides). See Cluster.Tracer.
	TraceFlits int

	// Hooks to override component defaults (nil = defaults).
	HostConfig    func(i int) host.Config
	LinkConfig    func() link.Config
	SwitchConfig  func() fabric.SwitchConfig
	FAMConfig     func(i int, capacity uint64) mem.FAMConfig
	FAAConfig     func(i int) faa.Config
	ArbiterConfig func() arbiter.Config
	ManagerConfig func() fabric.ManagerConfig
}

// DefaultConfig is one host, one FAM, calibrated defaults.
func DefaultConfig() Config {
	return Config{Hosts: 1, FAMs: 1, FAMCapacity: 1 << 30}
}

// Cluster is an assembled composable infrastructure.
type Cluster struct {
	Eng     *sim.Engine
	Builder *fabric.Builder
	Hosts   []*host.Host
	FAMs    []*mem.FAM
	FAAs    []*faa.Device
	Agents  []*etrans.Agent
	Arbiter *arbiter.Arbiter
	Dirs    []*coherence.Directory

	// Manager is the active fabric manager (nil unless Config.Manager).
	Manager *fabric.Manager

	// Faults is the fault injector (nil until NewInjector is called).
	Faults *fault.Injector

	// Tracer is the fabric-wide flit tracer (nil unless Config.TraceFlits
	// was set). Every port in the cluster records into this one ring, so
	// a packet's whole path is reconstructable from a single buffer.
	Tracer *telemetry.Tracer

	cfg Config
}

// New assembles a cluster per cfg, runs fabric discovery, and maps all
// FAM regions into every host's address space.
func New(cfg Config) (*Cluster, error) {
	if cfg.Hosts < 1 {
		return nil, fmt.Errorf("fcc: need at least one host")
	}
	if cfg.FAMCapacity == 0 {
		cfg.FAMCapacity = 1 << 30
	}
	if cfg.Switches < 1 {
		cfg.Switches = 1
	}
	eng := sim.NewEngine()
	b := fabric.NewBuilder(eng)
	c := &Cluster{Eng: eng, Builder: b, cfg: cfg}

	lcfg := link.DefaultConfig
	if cfg.LinkConfig != nil {
		lcfg = cfg.LinkConfig
	}
	scfg := fabric.DefaultSwitchConfig
	if cfg.SwitchConfig != nil {
		scfg = cfg.SwitchConfig
	}

	var switches []*fabric.Switch
	for i := 0; i < cfg.Switches; i++ {
		switches = append(switches, b.AddSwitch(fmt.Sprintf("fs%d", i), scfg()))
	}
	for i := 1; i < cfg.Switches; i++ {
		if err := b.ConnectSwitches(switches[i-1], switches[i], lcfg()); err != nil {
			return nil, err
		}
	}
	if cfg.Ring && cfg.Switches >= 3 {
		if err := b.ConnectSwitches(switches[cfg.Switches-1], switches[0], lcfg()); err != nil {
			return nil, err
		}
	}
	devSwitch := func(i int) *fabric.Switch { return switches[i%len(switches)] }
	hostSwitch := func(i int) *fabric.Switch {
		if cfg.SpreadHosts {
			return devSwitch(i)
		}
		return switches[0]
	}

	for i := 0; i < cfg.Hosts; i++ {
		att, err := b.AttachEndpoint(hostSwitch(i), fmt.Sprintf("host%d", i), fabric.RoleHost, lcfg())
		if err != nil {
			return nil, err
		}
		hc := host.DefaultConfig()
		if cfg.HostConfig != nil {
			hc = cfg.HostConfig(i)
		}
		c.Hosts = append(c.Hosts, host.New(eng, att.Name, hc, att))
	}
	for i := 0; i < cfg.FAMs; i++ {
		att, err := b.AttachEndpoint(devSwitch(i), fmt.Sprintf("fam%d", i), fabric.RoleFAM, lcfg())
		if err != nil {
			return nil, err
		}
		fc := mem.DefaultFAMConfig(cfg.FAMCapacity)
		if cfg.FAMConfig != nil {
			fc = cfg.FAMConfig(i, cfg.FAMCapacity)
		}
		fam := mem.NewFAM(eng, att, fc)
		c.FAMs = append(c.FAMs, fam)
		if cfg.Coherent {
			c.Dirs = append(c.Dirs, coherence.NewDirectory(eng, fam))
		}
	}
	for i := 0; i < cfg.FAAs; i++ {
		att, err := b.AttachEndpoint(devSwitch(i), fmt.Sprintf("faa%d", i), fabric.RoleFAA, lcfg())
		if err != nil {
			return nil, err
		}
		fc := faa.DefaultConfig()
		if cfg.FAAConfig != nil {
			fc = cfg.FAAConfig(i)
		}
		c.FAAs = append(c.FAAs, faa.New(eng, att, fc))
	}
	if cfg.Agents {
		for i := range c.FAMs {
			att, err := b.AttachEndpoint(devSwitch(i), fmt.Sprintf("agent%d", i), fabric.RoleFAA, lcfg())
			if err != nil {
				return nil, err
			}
			c.Agents = append(c.Agents, etrans.NewAgent(eng, att))
		}
	}
	if cfg.Arbiter {
		att, err := b.AttachEndpoint(switches[0], "arbiter", fabric.RoleManager, lcfg())
		if err != nil {
			return nil, err
		}
		ac := arbiter.DefaultConfig()
		if cfg.ArbiterConfig != nil {
			ac = cfg.ArbiterConfig()
		}
		c.Arbiter = arbiter.New(eng, att, ac)
	}
	if err := b.Discover(); err != nil {
		return nil, err
	}
	if cfg.Manager {
		mc := fabric.DefaultManagerConfig()
		if cfg.ManagerConfig != nil {
			mc = cfg.ManagerConfig()
		}
		c.Manager = fabric.NewManager(eng, b, mc)
	}
	if cfg.TraceFlits > 0 {
		c.Tracer = telemetry.NewTracer(cfg.TraceFlits)
		for _, att := range b.Attachments() {
			att.Port.SetTracer(c.Tracer)
		}
		for _, sw := range b.Switches() {
			for i := 0; i < sw.Ports(); i++ {
				sw.Port(i).SetTracer(c.Tracer)
			}
		}
	}
	// Map every FAM into every host's physical address space.
	for _, h := range c.Hosts {
		for i, f := range c.FAMs {
			base := RemoteBase + uint64(i)*cfg.FAMCapacity
			if err := h.MapRemote(f.Name(), base, cfg.FAMCapacity, f.ID(), 0); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// FAMBase reports where FAM i is mapped in host address space.
func (c *Cluster) FAMBase(i int) uint64 {
	return RemoteBase + uint64(i)*c.cfg.FAMCapacity
}

// NewHeap builds a unified heap on host h with a local pool of
// localBytes and one far pool per FAM.
func (c *Cluster) NewHeap(h *host.Host, hcfg uheap.Config, localBytes uint64) (*uheap.Heap, error) {
	specs := []uheap.PoolSpec{{
		Name: "dimm", Base: 1 << 20, Size: localBytes, Class: uheap.ClassLocal,
	}}
	for i, f := range c.FAMs {
		specs = append(specs, uheap.PoolSpec{
			Name: f.Name(), Base: c.FAMBase(i), Size: c.cfg.FAMCapacity,
			Class: uheap.ClassFar,
		})
	}
	return uheap.New(h, hcfg, specs...)
}

// NewETrans builds an elastic transaction engine for host h, registered
// with every migration agent (and the arbiter when present).
func (c *Cluster) NewETrans(h *host.Host) *etrans.Engine {
	e := etrans.NewEngine(c.Eng, h.Endpoint())
	for i, a := range c.Agents {
		e.AddAgent(a.ID(), c.FAMs[i].ID())
		if c.Arbiter != nil {
			a.SetArbiter(arbiter.NewClient(a.Endpoint(), c.Arbiter.ID()))
		}
	}
	if c.Arbiter != nil {
		e.SetArbiter(arbiter.NewClient(h.Endpoint(), c.Arbiter.ID()))
	}
	return e
}

// NewTaskRunner builds an idempotent-task runner on host h, with one
// local engine and one engine per FAA.
func (c *Cluster) NewTaskRunner(h *host.Host, seed uint64) *task.Runner {
	r := task.NewRunner(c.Eng, h.Endpoint())
	r.AddEngine(task.NewLocalEngine(c.Eng, h.Name()+"-cpu", seed))
	for _, d := range c.FAAs {
		r.AddEngine(faa.NewEngine(d))
	}
	return r
}

// NewCoherenceClient registers host h as a CC-NUMA participant of the
// directory fronting FAM i (the cluster must be built Coherent).
func (c *Cluster) NewCoherenceClient(h *host.Host, fam int, ccfg coherence.ClientConfig) *coherence.Client {
	return coherence.NewClient(c.Eng, h, c.Dirs[fam].ID(), ccfg)
}

// ArbiterClient returns an arbiter client for host h.
func (c *Cluster) ArbiterClient(h *host.Host) *arbiter.Client {
	return arbiter.NewClient(h.Endpoint(), c.Arbiter.ID())
}

// Stats assembles the fabric-wide metrics tree: every switch (with all
// its link ports), host, FAM, FAA, migration agent, coherence directory,
// and the arbiter, each under its stable component name. The tree reads
// live metrics — call Snapshot() on the result after (or during) a run.
func (c *Cluster) Stats() *sim.Stats {
	root := sim.NewStats("cluster")
	for _, sw := range c.Builder.Switches() {
		sw.RegisterStats(root.Child(sw.Name()))
	}
	for _, h := range c.Hosts {
		h.RegisterStats(root.Child(h.Name()))
	}
	for _, f := range c.FAMs {
		f.RegisterStats(root.Child(f.Name()))
	}
	for i, d := range c.FAAs {
		d.RegisterStats(root.Child(fmt.Sprintf("faa%d", i)))
	}
	for i, a := range c.Agents {
		a.RegisterStats(root.Child(fmt.Sprintf("agent%d", i)))
	}
	for i, d := range c.Dirs {
		d.RegisterStats(root.Child(fmt.Sprintf("dir%d", i)))
	}
	if c.Arbiter != nil {
		c.Arbiter.RegisterStats(root.Child("arbiter"))
	}
	if c.Manager != nil {
		c.Manager.RegisterStats(root.Child("manager"))
	}
	if c.Faults != nil {
		c.Faults.RegisterStats(root.Child("fault"))
	}
	return root
}

// NewInjector builds a seeded fault injector with every failable
// component of the cluster registered: all switches, all links
// (inter-switch and endpoint), all FAMs, and all FAAs. The returned
// injector is also stored as c.Faults so Stats() exports its
// blast-radius metrics under the "fault" subtree.
func (c *Cluster) NewInjector(seed uint64) *fault.Injector {
	in := fault.NewInjector(c.Eng, seed)
	for _, sw := range c.Builder.Switches() {
		in.Register(sw)
	}
	for _, l := range c.Builder.ISLLinks() {
		in.Register(l)
	}
	for _, att := range c.Builder.Attachments() {
		in.Register(att.Link)
	}
	for _, f := range c.FAMs {
		in.Register(f)
	}
	for _, d := range c.FAAs {
		in.Register(d)
	}
	c.Faults = in
	return in
}

// Render draws the topology (the Figure 1b regeneration).
func (c *Cluster) Render() string { return c.Builder.Render() }

// Run drains the simulation.
func (c *Cluster) Run() { c.Eng.Run() }

// RunFor advances the simulation by d.
func (c *Cluster) RunFor(d sim.Time) { c.Eng.RunFor(d) }

// Go starts a workload process.
func (c *Cluster) Go(name string, fn func(p *sim.Proc)) *sim.Proc {
	return c.Eng.Go(name, fn)
}

// ProbeDevicesP performs the fabric-manager enumeration pass at runtime:
// host h sends a CXL.io configuration read to every FAM and collects the
// capacities the devices report — the management-plane traffic that in
// real systems populates the FM's inventory.
func (c *Cluster) ProbeDevicesP(p *sim.Proc, h *host.Host) map[string]uint64 {
	out := make(map[string]uint64, len(c.FAMs))
	for _, f := range c.FAMs {
		resp := h.Endpoint().Request(&flit.Packet{
			Chan: flit.ChIO, Op: flit.OpCfgRd, Dst: f.ID(),
		}).MustAwait(p)
		var capacity uint64
		for i := 7; i >= 0; i-- {
			capacity = capacity<<8 | uint64(resp.Data[i])
		}
		out[f.Name()] = capacity
	}
	return out
}
